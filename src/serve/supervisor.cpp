#include "serve/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "serve/protocol.hpp"
#include "serve/worker.hpp"
#include "util/error.hpp"
#include "util/knobs.hpp"

namespace hlts::serve {

namespace {

using util::JsonValue;

std::string http_response(const std::string& body, const char* status) {
  return std::string("HTTP/1.1 ") + status +
         "\r\nContent-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace

ServerOptions ServerOptions::from_env(ServerOptions base) {
  if (const auto v = util::knobs::read_int("HLTS_SERVE_SHARDS"); v && *v >= 1) {
    base.shards = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_int("HLTS_SERVE_PORT"); v && *v >= 0) {
    base.port = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_size("HLTS_SERVE_MAX_REQUEST_BYTES")) {
    base.max_request_bytes = *v;
  }
  return base;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      listener_(options_.port),
      router_(options_.shards) {
  HLTS_REQUIRE_INPUT(!options_.journal_root.empty(),
                     "Server: journal_root is required");
  // Fork every worker before any thread exists in this process (run()
  // starts the first ones); a fork after that would clone locked mutexes
  // into the child.
  workers_.reserve(static_cast<std::size_t>(options_.shards));
  for (int shard = 0; shard < options_.shards; ++shard) {
    auto [parent_end, child_end] = util::net::socket_pair();
    const pid_t pid = ::fork();
    HLTS_REQUIRE(pid >= 0, "Server: fork failed");
    if (pid == 0) {
      // Child: drop every fd that belongs to the supervisor side.
      listener_.close_now();
      parent_end.close();
      for (auto& w : workers_) w->fd.close();
      WorkerConfig config;
      config.shard = shard;
      config.journal_dir =
          options_.journal_root + "/shard-" + std::to_string(shard);
      config.engine = options_.engine;
      config.max_line_bytes = options_.max_request_bytes + (1u << 20);
      run_worker(child_end.get(), config);
      // Skip global destructors: this child shares no state worth tearing
      // down, and the engine drained inside run_worker.
      std::_Exit(0);
    }
    auto w = std::make_unique<Worker>();
    w->shard = shard;
    w->pid = pid;
    w->fd = std::move(parent_end);
    w->journal_dir = options_.journal_root + "/shard-" + std::to_string(shard);
    workers_.push_back(std::move(w));
  }
}

Server::~Server() {
  stop();
  for (const auto& w : workers_) {
    if (w->reader.joinable()) w->reader.join();
  }
  for (const auto& w : workers_) {
    (void)::waitpid(w->pid, nullptr, 0);  // ECHILD when already reaped
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const ConnPtr& c : conns_) util::net::shutdown_fd(c->fd.get());
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

void Server::run() {
  for (const auto& w : workers_) {
    w->reader = std::thread(&Server::worker_reader_loop, this, w->shard);
  }
  while (true) {
    util::net::Fd client = listener_.accept();
    if (!client.valid()) break;  // shutdown_now(): orderly shutdown
    auto conn = std::make_shared<Conn>();
    conn->fd = std::move(client);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(&Server::client_loop, this, conn);
  }
  // Workers drain (finish + flush every accepted job) before their EOF.
  for (const auto& w : workers_) {
    if (w->reader.joinable()) w->reader.join();
  }
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (const ConnPtr& c : conns_) util::net::shutdown_fd(c->fd.get());
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  for (const auto& w : workers_) {
    bool alive;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      alive = w->alive;
    }
    if (alive) send_to_worker(w->shard, proto::quit_line());
  }
  listener_.shutdown_now();
}

void Server::send_to_worker(int shard, const std::string& frame) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(w.write_mutex);
  try {
    util::net::write_all(w.fd.get(), frame);
  } catch (const Error&) {
    // Worker just died: its reader thread's EOF runs the failover machine,
    // which re-covers everything this frame carried (pending table).
  }
}

void Server::reply(const ConnPtr& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  try {
    util::net::write_all(conn->fd.get(), line);
  } catch (const Error&) {
    // Client gone; results for its tags are dropped on arrival.
  }
}

std::map<int, bool> Server::alive_map_locked() const {
  std::map<int, bool> alive;
  for (const auto& w : workers_) alive[w->shard] = w->alive;
  return alive;
}

void Server::erase_pending_locked(
    std::map<std::uint64_t, Pending>::iterator it) {
  if (!it->second.token.empty()) token_inflight_.erase(it->second.token);
  pending_.erase(it);
}

void Server::remember_token_locked(const std::string& token,
                                   const std::string& line, bool memoize) {
  if (token.empty()) return;
  token_inflight_.erase(token);
  if (!memoize) return;  // refusals re-execute on retry, never replay
  if (token_done_.emplace(token, line).second) {
    token_done_order_.push_back(token);
    while (token_done_order_.size() > kTokenCacheCap) {
      token_done_.erase(token_done_order_.front());
      token_done_order_.pop_front();
    }
  }
}

void Server::forward_locked(std::uint64_t tag) {
  auto it = pending_.find(tag);
  if (it == pending_.end()) return;
  const int shard = router_.route(it->second.name);
  if (shard < 0) {
    const ConnPtr conn = it->second.conn;
    erase_pending_locked(it);
    reply(conn, proto::error_line("no live shard"));
    return;
  }
  it->second.shard = shard;
  send_to_worker(shard, proto::submit_line(tag, it->second.request));
}

void Server::handle_submit(const ConnPtr& conn, const util::JsonValue& doc) {
  const JsonValue* request = doc.find("request");
  if (request == nullptr) {
    reply(conn, proto::error_line("submit: missing request"));
    return;
  }
  std::string name;
  std::string token;
  try {
    // Full schema validation at the boundary; the worker re-validates on
    // its trusted link but never sees a malformed document.
    api::FlowRequestV1 parsed = api::FlowRequestV1::from_json(*request);
    name = std::move(parsed.name);
    token = std::move(parsed.flow_token);
  } catch (const Error& e) {
    reply(conn, proto::error_line(e.what()));
    return;
  }
  const std::uint64_t tag = next_tag();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!token.empty()) {
    // Idempotent retry protocol: a token already answered replays the
    // exact reply line; a token still in flight re-attaches this (newer)
    // connection to the outstanding job instead of executing it twice.
    if (const auto done = token_done_.find(token); done != token_done_.end()) {
      reply(conn, done->second);
      return;
    }
    if (const auto fly = token_inflight_.find(token);
        fly != token_inflight_.end()) {
      const auto p = pending_.find(fly->second);
      if (p != pending_.end()) {
        p->second.conn = conn;
        return;
      }
      token_inflight_.erase(fly);  // stale index row; fall through
    }
  }
  if (stopping_) {
    reply(conn, proto::error_line("server is shutting down"));
    return;
  }
  pending_[tag] = Pending{-1, std::move(name), *request, conn, token};
  if (!token.empty()) token_inflight_[token] = tag;
  forward_locked(tag);
}

void Server::handle_health(const ConnPtr& conn, bool http) {
  std::vector<int> live;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& w : workers_) {
      if (w->alive) live.push_back(w->shard);
    }
    if (live.empty()) {
      const std::string body = util::json_dump(view_.to_json(alive_map_locked()));
      reply(conn, http ? http_response(body, "200 OK")
                       : proto::ok_health_line(util::json_parse(body).value()));
      if (http) util::net::shutdown_fd(conn->fd.get());
      return;
    }
    auto query = std::make_shared<HealthQuery>();
    query->conn = conn;
    query->http = http;
    std::vector<std::pair<std::uint64_t, int>> probes;
    probes.reserve(live.size());
    for (const int shard : live) {
      const std::uint64_t tag = next_tag();
      query->outstanding.insert(tag);
      health_probes_[tag] = ProbeEntry{query, shard};
      probes.emplace_back(tag, shard);
    }
    for (const auto& [tag, shard] : probes) {
      send_to_worker(shard, proto::health_line(tag));
    }
  }
}

void Server::finish_health_probe(std::uint64_t tag) {
  // state_mutex_ held by caller.
  const auto it = health_probes_.find(tag);
  if (it == health_probes_.end()) return;
  const std::shared_ptr<HealthQuery> query = it->second.query;
  health_probes_.erase(it);
  query->outstanding.erase(tag);
  if (!query->outstanding.empty()) return;
  const std::string body = util::json_dump(view_.to_json(alive_map_locked()));
  if (query->http) {
    reply(query->conn, http_response(body, "200 OK"));
    util::net::shutdown_fd(query->conn->fd.get());
  } else {
    reply(query->conn, proto::ok_health_line(util::json_parse(body).value()));
  }
}

void Server::worker_reader_loop(int shard) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  util::net::LineReader reader(w.fd.get(),
                               options_.max_request_bytes + (2u << 20));
  try {
    while (const auto line = reader.read_line()) {
      const auto doc = util::json_parse(*line);
      if (!doc || !doc->is_object()) continue;
      const std::string kind = doc->get_string("kind");
      const std::uint64_t tag =
          static_cast<std::uint64_t>(doc->get_int("tag", 0));
      if (kind == "result") {
        const JsonValue* result = doc->find("result");
        if (result == nullptr) continue;
        ConnPtr conn;
        const std::string reply_line = proto::ok_result_line(*result);
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          const auto it = pending_.find(tag);
          if (it == pending_.end()) continue;  // duplicate / orphan replay
          conn = it->second.conn;
          // Memoize the exact reply line under the flow token so a retry
          // gets the bit-identical answer -- unless the worker refused the
          // job ("rejected": it never executed), which must stay retryable.
          remember_token_locked(it->second.token, reply_line,
                                result->get_string("state") != "rejected");
          pending_.erase(it);
        }
        reply(conn, reply_line);
      } else if (kind == "health") {
        const JsonValue* health = doc->find("health");
        if (health == nullptr) continue;
        std::lock_guard<std::mutex> lock(state_mutex_);
        try {
          view_.observe(api::HealthV1::from_json(*health));
        } catch (const Error&) {
          // Malformed snapshot: still resolve the probe.
        }
        finish_health_probe(tag);
      } else if (kind == "adopted") {
        std::set<std::uint64_t> adopted;
        if (const JsonValue* tags = doc->find("tags"); tags && tags->is_array()) {
          for (const JsonValue& t : tags->as_array()) {
            if (t.is_int()) adopted.insert(static_cast<std::uint64_t>(t.as_int()));
          }
        }
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = adoptions_.find(tag);
        if (it == adoptions_.end()) continue;
        const Adoption adoption = it->second;
        adoptions_.erase(it);
        for (const std::uint64_t t : adoption.owned) {
          const auto p = pending_.find(t);
          if (p == pending_.end()) continue;  // result arrived meanwhile
          if (adopted.count(t) != 0) {
            // Journaled before the crash: resumes on the peer from its
            // last checkpoint.
            p->second.shard = adoption.peer;
          } else {
            // Died before its write-ahead record: replay the supervisor's
            // copy onto a live shard.
            forward_locked(t);
          }
        }
      }
    }
  } catch (const Error&) {
    // Poisoned frame from the worker: treat as a dead worker.
  }
  on_worker_death(shard);
}

void Server::on_worker_death(int shard) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  (void)::waitpid(w.pid, nullptr, 0);

  std::vector<std::pair<ConnPtr, std::string>> replies;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!w.alive) return;
    w.alive = false;
    router_.mark_dead(shard);

    // Health fan-outs waiting on this shard would hang forever: strike its
    // probes and complete any query that only waited on it.
    std::vector<std::uint64_t> dead_probes;
    for (const auto& [tag, entry] : health_probes_) {
      if (entry.shard == shard) dead_probes.push_back(tag);
    }
    for (const std::uint64_t tag : dead_probes) finish_health_probe(tag);

    if (stopping_) return;  // orderly drain, nothing to fail over

    // Requests the dead shard owned, plus requests from adoptions it had
    // accepted but not yet answered (their journal state is unknown: replay
    // them from the pending table -- duplicate execution is benign, the
    // first result wins and results are bit-identical anyway).
    std::set<std::uint64_t> owned;
    for (const auto& [tag, p] : pending_) {
      if (p.shard == shard) owned.insert(tag);
    }
    std::set<std::uint64_t> resubmit;
    std::vector<std::uint64_t> stale_adopts;
    for (auto& [tag, adoption] : adoptions_) {
      if (adoption.peer != shard) continue;
      for (const std::uint64_t t : adoption.owned) {
        if (pending_.count(t) != 0) resubmit.insert(t);
      }
      stale_adopts.push_back(tag);
    }
    for (const std::uint64_t tag : stale_adopts) adoptions_.erase(tag);

    const int peer = router_.peer_of(shard);
    if (peer < 0) {
      for (const std::uint64_t t : owned) {
        const auto it = pending_.find(t);
        if (it == pending_.end()) continue;
        replies.emplace_back(it->second.conn,
                             proto::error_line("all shards dead"));
        erase_pending_locked(it);
      }
      for (const std::uint64_t t : resubmit) {
        const auto it = pending_.find(t);
        if (it == pending_.end()) continue;
        replies.emplace_back(it->second.conn,
                             proto::error_line("all shards dead"));
        erase_pending_locked(it);
      }
    } else {
      const std::uint64_t adopt_tag = next_tag();
      adoptions_[adopt_tag] = Adoption{shard, peer, owned};
      send_to_worker(peer, proto::adopt_line(adopt_tag, w.journal_dir));
      for (const std::uint64_t t : resubmit) forward_locked(t);
    }
  }
  for (const auto& [conn, line] : replies) reply(conn, line);
}

void Server::client_loop(ConnPtr conn) {
  util::net::LineReader reader(conn->fd.get(), options_.max_request_bytes);
  while (true) {
    std::optional<std::string> line;
    try {
      line = reader.read_line();
    } catch (const Error& e) {
      // The server-boundary document cap: refuse and drop the connection
      // (the reader cannot resynchronize inside an oversized line).
      reply(conn, proto::error_line(e.what()));
      util::net::shutdown_fd(conn->fd.get());
      return;
    }
    if (!line) return;
    if (line->rfind("GET ", 0) == 0) {
      // Minimal HTTP probe support.  Drain the request head, then serve.
      while (const auto header = reader.read_line()) {
        if (header->empty() || *header == "\r") break;
      }
      if (line->rfind("GET /health", 0) == 0) {
        handle_health(conn, /*http=*/true);
      } else {
        reply(conn, http_response("{\"error\":\"not found\"}\n", "404 Not Found"));
        util::net::shutdown_fd(conn->fd.get());
      }
      return;
    }
    const auto doc = util::json_parse(*line);
    if (!doc || !doc->is_object()) {
      reply(conn, proto::error_line("malformed request line"));
      continue;
    }
    const std::string op = doc->get_string("op");
    if (op == "submit") {
      handle_submit(conn, *doc);
    } else if (op == "health") {
      handle_health(conn, /*http=*/false);
    } else if (op == "kill") {
      const int shard = static_cast<int>(doc->get_int("shard", -1));
      bool ok = false;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shard >= 0 && shard < options_.shards &&
            workers_[static_cast<std::size_t>(shard)]->alive) {
          ok = ::kill(workers_[static_cast<std::size_t>(shard)]->pid,
                      SIGKILL) == 0;
        }
      }
      reply(conn, ok ? proto::ok_line()
                     : proto::error_line("kill: no such live shard"));
    } else if (op == "shutdown") {
      reply(conn, proto::ok_line());
      stop();
      return;
    } else {
      reply(conn, proto::error_line("unknown op '" + op + "'"));
    }
  }
}

}  // namespace hlts::serve
