#include "serve/health.hpp"

namespace hlts::serve {

namespace {
using util::JsonValue;
}  // namespace

void ClusterView::observe(const api::HealthV1& h) {
  counters_.merge_at(h.shard, h);
  last_[h.shard] = h;
}

util::JsonValue ClusterView::to_json(const std::map<int, bool>& alive) const {
  std::int64_t submitted = 0, retries = 0, stalls = 0, sheds = 0, rejected = 0,
               recovered = 0, journal_lag = 0;
  std::int64_t respawns = 0, hedges_won = 0, hedges_cancelled = 0;
  int quarantined_shards = 0;
  bool journaling = false;
  for (const auto& [shard, c] : counters_.reveal()) {
    submitted += c.submitted.reveal();
    retries += c.retries.reveal();
    stalls += c.stalls.reveal();
    sheds += c.sheds.reveal();
    rejected += c.rejected.reveal();
    recovered += c.recovered.reveal();
    journal_lag += c.journal_lag.reveal();
    journaling = journaling || c.journaling.reveal();
    respawns += c.respawns.reveal();
    hedges_won += c.hedges_won.reveal();
    hedges_cancelled += c.hedges_cancelled.reveal();
    quarantined_shards += c.quarantined.reveal() ? 1 : 0;
  }
  std::int64_t queue_depth = 0, in_flight = 0, running = 0;
  int live = 0;
  JsonValue::Array shards;
  JsonValue::Array warnings;
  shards.reserve(last_.size());
  for (const auto& [shard, h] : last_) {
    const auto it = alive.find(shard);
    const bool is_alive = it != alive.end() && it->second;
    if (is_alive) {
      queue_depth += h.queue_depth;
      in_flight += h.in_flight;
      running += h.running;
      ++live;
    }
    if (is_alive && h.queue_capacity < 0) {
      // An unbounded pending queue turns overload into unbounded memory
      // growth and stale work; surfaced as a warning, not an error, because
      // batch deployments opt into it deliberately.
      warnings.push_back(JsonValue::make_string(
          "shard " + std::to_string(shard) +
          ": unbounded queue (no admission control under overload)"));
    }
    JsonValue doc = h.to_json();
    JsonValue::Object o = doc.as_object();
    o.emplace_back("alive", JsonValue::make_bool(is_alive));
    shards.push_back(JsonValue::make_object(std::move(o)));
  }
  return JsonValue::make_object({
      {"schema_version", JsonValue::make_int(1)},
      {"cluster",
       JsonValue::make_object({
           {"live_shards", JsonValue::make_int(live)},
           {"queue_depth", JsonValue::make_int(queue_depth)},
           {"in_flight", JsonValue::make_int(in_flight)},
           {"running", JsonValue::make_int(running)},
           {"submitted", JsonValue::make_int(submitted)},
           {"retries", JsonValue::make_int(retries)},
           {"stalls", JsonValue::make_int(stalls)},
           {"sheds", JsonValue::make_int(sheds)},
           {"rejected", JsonValue::make_int(rejected)},
           {"recovered", JsonValue::make_int(recovered)},
           {"journal_lag", JsonValue::make_int(journal_lag)},
           {"journaling", JsonValue::make_bool(journaling)},
           {"respawns", JsonValue::make_int(respawns)},
           {"hedges_won", JsonValue::make_int(hedges_won)},
           {"hedges_cancelled", JsonValue::make_int(hedges_cancelled)},
           {"quarantined_shards", JsonValue::make_int(quarantined_shards)},
       })},
      {"warnings", JsonValue::make_array(std::move(warnings))},
      {"shards", JsonValue::make_array(std::move(shards))},
  });
}

}  // namespace hlts::serve
