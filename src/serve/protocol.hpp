// The NDJSON wire protocol shared by hlts_serve, its forked shard workers,
// and the clients (hlts_load, tests).
//
// Framing is one JSON object per '\n'-terminated line on both transports
// (client <-> supervisor TCP, supervisor <-> worker socketpair); the
// payloads are the versioned DTOs from src/api.  DESIGN.md section 13
// documents the full grammar; the shapes are:
//
//   client -> supervisor   {"op":"submit","request":{FlowRequestV1}}
//                          {"op":"health"} | {"op":"kill","shard":K}
//                          {"op":"shutdown"}
//                          "GET /health ..." (HTTP probe, one-shot)
//   supervisor -> client   {"ok":true,"result":{FlowResultV1}}
//                          {"ok":true,"health":{cluster}} | {"ok":false,
//                          "error":"..."}
//   supervisor -> worker   {"op":"submit","tag":T,"request":{...}}
//                          {"op":"health","tag":T}
//                          {"op":"adopt","tag":T,"dir":"..."}
//                          {"op":"cancel","tag":T} | {"op":"quit"}
//   worker -> supervisor   {"kind":"ready","tags":[...]} (once, at startup)
//                          {"kind":"result","tag":T,"result":{...}}
//                          {"kind":"health","tag":T,"health":{HealthV1}}
//                          {"kind":"adopted","tag":T,"tags":[...]}
//
// Tag correlation: the supervisor assigns every in-flight request a unique
// uint64 tag and embeds it in the job *name* ("t<tag>|<client name>") before
// the worker submits to its engine.  The name -- and therefore the tag --
// is part of the write-ahead journal record, so when a worker dies and a
// peer adopts its journal, the recovered jobs still identify the client
// requests they answer.  Results strip the prefix before leaving the
// supervisor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/api.hpp"
#include "util/json.hpp"

namespace hlts::serve::proto {

// --- supervisor -> worker frames -------------------------------------------
[[nodiscard]] std::string submit_line(std::uint64_t tag,
                                      const util::JsonValue& request);
[[nodiscard]] std::string health_line(std::uint64_t tag);
[[nodiscard]] std::string adopt_line(std::uint64_t tag, const std::string& dir);
/// Best-effort cancel of an in-flight submit (hedging: the losing copy of a
/// hedged request is told to stop burning cycles; its result, if any, is an
/// orphan the supervisor drops by tag).
[[nodiscard]] std::string cancel_line(std::uint64_t tag);
[[nodiscard]] std::string quit_line();

// --- worker -> supervisor frames -------------------------------------------
[[nodiscard]] std::string result_frame(std::uint64_t tag,
                                       const api::FlowResultV1& result);
[[nodiscard]] std::string health_frame(std::uint64_t tag,
                                       const api::HealthV1& health);
[[nodiscard]] std::string adopted_frame(std::uint64_t tag,
                                        const std::vector<std::uint64_t>& tags);
/// First frame a worker writes, after replaying its own journal: `tags`
/// lists the recovered request tags.  The supervisor uses it to mark a
/// respawned shard rejoined (ring + breaker reset) and to re-point the
/// recovered pending requests back at it; requests it owned that are NOT
/// listed died before their write-ahead record and are resubmitted.
[[nodiscard]] std::string ready_frame(const std::vector<std::uint64_t>& tags);

// --- supervisor -> client frames -------------------------------------------
[[nodiscard]] std::string ok_result_line(const util::JsonValue& result);
[[nodiscard]] std::string ok_health_line(const util::JsonValue& health);
[[nodiscard]] std::string ok_line();
[[nodiscard]] std::string error_line(const std::string& message);

// --- tag embedding ----------------------------------------------------------
/// "t<tag>|<name>" -- the crash-durable request correlation key.
[[nodiscard]] std::string embed_tag(std::uint64_t tag, const std::string& name);
struct TaggedName {
  std::uint64_t tag = 0;
  std::string name;  ///< the client-visible name (prefix stripped)
};
/// Inverse of embed_tag; nullopt when `name` does not carry a tag prefix.
[[nodiscard]] std::optional<TaggedName> split_tag(const std::string& name);

}  // namespace hlts::serve::proto
