// Shard lifecycle primitives for the supervisor: circuit breaking, respawn
// backoff with flap quarantine, EWMA load scores and a latency window for
// hedge-delay estimation.
//
// All four classes are pure state machines over caller-supplied millisecond
// timestamps -- no clock reads, no randomness, no threads.  The supervisor
// feeds them wall-progress from its own monotonic clock; unit tests feed
// synthetic time and get bit-identical traces.  Locking is the caller's
// problem (the supervisor holds its state mutex around every touch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlts::serve {

/// Classic three-state circuit breaker guarding one shard.
///
///   Closed    -> Open      after `failures` consecutive failures
///   Open      -> HalfOpen  once `cooldown_ms` has elapsed (allow() flips it
///                          and admits exactly one probe request)
///   HalfOpen  -> Closed    when that probe succeeds
///   HalfOpen  -> Open      when it fails (cooldown restarts)
///
/// "Failure" is anything the supervisor counts against the shard: a worker
/// death with requests in flight, a protocol error on its pipe, a rejected
/// probe.  Routing asks allow() before forwarding; an open breaker routes
/// around the shard without waiting for it to die properly.
class CircuitBreaker {
 public:
  enum class State { Closed, Open, HalfOpen };

  CircuitBreaker(int failures, std::int64_t cooldown_ms)
      : threshold_(failures < 1 ? 1 : failures), cooldown_ms_(cooldown_ms) {}

  /// May a request be forwarded to this shard right now?  In Open state
  /// this flips to HalfOpen after the cooldown and admits a single probe;
  /// further calls return false until that probe reports back.
  [[nodiscard]] bool allow(std::int64_t now_ms);

  /// allow() without side effects -- for building a routing candidate set
  /// across every shard without burning half-open probe slots on shards
  /// the router then does not pick.  The caller promotes the chosen shard
  /// with allow().
  [[nodiscard]] bool would_allow(std::int64_t now_ms) const;

  /// Result of a forwarded request (or probe).
  void record_success();
  void record_failure(std::int64_t now_ms);

  /// Forces Closed with zeroed counters -- used when a shard respawns and
  /// reports ready: the new process has no history to hold against it.
  void reset();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const char* state_name() const;
  [[nodiscard]] int consecutive_failures() const { return failures_; }

 private:
  int threshold_;
  std::int64_t cooldown_ms_;
  State state_ = State::Closed;
  int failures_ = 0;
  std::int64_t opened_ms_ = 0;
  bool probe_in_flight_ = false;
};

/// Respawn pacing for one shard: capped exponential backoff between respawn
/// attempts, plus flap detection -- more than `flap_limit` deaths inside a
/// sliding `flap_window_ms` quarantines the shard (no further respawns; its
/// journal stays on disk for a peer or an operator).
class RespawnPolicy {
 public:
  RespawnPolicy(std::int64_t backoff_ms, std::int64_t backoff_cap_ms,
                std::int64_t flap_window_ms, int flap_limit)
      : backoff_ms_(backoff_ms < 1 ? 1 : backoff_ms),
        backoff_cap_ms_(backoff_cap_ms < backoff_ms_ ? backoff_ms_
                                                     : backoff_cap_ms),
        flap_window_ms_(flap_window_ms),
        flap_limit_(flap_limit < 1 ? 1 : flap_limit) {}

  /// Records a worker death; returns the earliest instant a respawn may be
  /// attempted, or -1 when the death pushed the shard into quarantine.
  [[nodiscard]] std::int64_t on_death(std::int64_t now_ms);

  /// A respawned worker reported ready and survived: the backoff ladder
  /// resets (the death history stays -- surviving briefly must not defeat
  /// the flap window).
  void on_ready();

  [[nodiscard]] bool quarantined() const { return quarantined_; }
  [[nodiscard]] int deaths() const { return static_cast<int>(deaths_.size()); }

 private:
  std::int64_t backoff_ms_;
  std::int64_t backoff_cap_ms_;
  std::int64_t flap_window_ms_;
  int flap_limit_;
  int attempt_ = 0;  ///< consecutive deaths without an on_ready in between
  bool quarantined_ = false;
  std::vector<std::int64_t> deaths_;  ///< death instants inside the window
};

/// Exponentially weighted moving average; `alpha` is the weight of each new
/// sample.  Unprimed (no samples) reports the neutral `initial` so a fresh
/// shard neither attracts all traffic nor repels it.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2, double initial = 0.0)
      : alpha_(alpha), value_(initial) {}

  void observe(double sample) {
    value_ = primed_ ? alpha_ * sample + (1.0 - alpha_) * value_ : sample;
    primed_ = true;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }

 private:
  double alpha_;
  double value_;
  bool primed_ = false;
};

/// Fixed-size ring of recent request latencies; percentile() is the
/// nearest-rank statistic over whatever the ring holds.  hedge_delay_ms
/// turns the p99 into a hedging trigger: max(min_ms, factor * p99), or
/// min_ms alone while fewer than `kMinSamples` latencies have been seen
/// (hedging on an unprimed estimate would hedge everything).
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 256) : capacity_(capacity) {}

  void observe(std::int64_t latency_ms);

  /// Nearest-rank percentile (q in [0,1]); 0 when empty.
  [[nodiscard]] std::int64_t percentile(double q) const;

  [[nodiscard]] std::int64_t hedge_delay_ms(std::int64_t min_ms,
                                            double factor) const;

  [[nodiscard]] std::size_t size() const { return ring_.size(); }

  static constexpr std::size_t kMinSamples = 16;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<std::int64_t> ring_;
};

}  // namespace hlts::serve
