// The hlts_serve supervisor: fork/monitor/failover over N shard workers.
//
// Process model (DESIGN.md section 13): the supervisor forks every worker
// *before* starting any thread (fork from a multithreaded process would be
// undefined for the child's locks), then runs threads only in the parent:
//
//   - one acceptor thread feeding per-connection client threads,
//   - one reader thread per worker socketpair, delivering result/health
//     frames and detecting worker death (EOF on the pair).
//
// Job flow: a client submit is validated (size cap at the line reader,
// schema by api::FlowRequestV1), tagged, routed by ShardRouter over the
// live shards, and forwarded; the worker's result frame is matched back to
// the waiting connection by tag.  Requests are kept in the pending table
// (tag -> shard, request document, connection) until their result arrives
// -- the supervisor's own replay copy.
//
// Failover state machine per worker death:
//   EOF -> reap the pid, mark the shard dead, pick the ring peer ->
//   send `adopt <dead journal dir>` to the peer -> on the adopted reply,
//   every pending tag of the dead shard is either (a) in the adopted set:
//   its journaled job resumes on the peer from its last checkpoint, or
//   (b) absent: it died before its write-ahead record, so the supervisor
//   resubmits it from the pending table to a live shard.  Either way the
//   client gets exactly one result, and results stay bit-identical to a
//   single-process run (the engine's recovery contract).  If the peer dies
//   too, its own EOF repeats the machine -- including re-targeting adopts
//   it had not answered.
//
// Health: per-worker HealthV1 snapshots merge into the lattice-backed
// ClusterView; `{"op":"health"}` and HTTP `GET /health` both serve it.
//
// Self-healing lifecycle (opt-in, LifecycleOptions::respawn): because the
// supervisor is multithreaded once run() starts, it cannot fork() safely
// itself -- instead the constructor forks one single-threaded *zygote*
// child before any thread exists, and every worker (initial and respawned)
// is forked by the zygote.  The supervisor asks for a worker over a control
// socketpair ("spawn <shard>"); the zygote forks it, hands the supervisor
// end of the new worker socketpair back via SCM_RIGHTS, and auto-reaps its
// children (SIGCHLD ignored).  A dead shard is respawned after a capped
// exponential backoff; the respawn replays the shard's own journal
// (Engine::recover), announces itself with a `ready` frame listing the
// recovered tags, and rejoins the ring -- recovered pending requests
// re-point to it, the rest resubmit.  A shard that keeps dying inside the
// flap window is quarantined: no further respawns, its journal fails over
// to a peer like a plain death.  Per-shard circuit breakers (closed /
// open / half-open) and EWMA latency scores feed health-aware routing
// (ShardRouter::route_ranked), and an opt-in hedging pass re-issues a
// straggling submit to a second shard after a p99-derived delay -- the
// first result wins, the loser is cancelled, and flow-token dedup plus the
// pending-table erase keep replies exactly-once.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "engine/engine.hpp"
#include "serve/health.hpp"
#include "serve/lifecycle.hpp"
#include "serve/router.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hlts::serve {

/// Self-healing / overload-control policy.  Everything here is off by
/// default: a server without the knobs behaves exactly like the
/// pre-lifecycle supervisor (a dead shard stays dead, failing over to its
/// ring peer), which several recovery tests and deployments rely on.
struct LifecycleOptions {
  bool respawn = false;  ///< respawn dead workers (HLTS_SERVE_RESPAWN)
  std::int64_t respawn_backoff_ms = 200;      ///< first-respawn delay
  std::int64_t respawn_backoff_cap_ms = 5000; ///< backoff ladder cap
  std::int64_t flap_window_ms = 10000;  ///< sliding window for flap detection
  int flap_limit = 5;  ///< deaths inside the window before quarantine
  int breaker_failures = 3;  ///< consecutive failures that open the breaker
  std::int64_t breaker_cooldown_ms = 1000;  ///< open -> half-open delay
  bool hedge = false;  ///< hedged requests (HLTS_SERVE_HEDGE)
  std::int64_t hedge_min_ms = 50;  ///< floor on the hedge trigger delay
  double hedge_factor = 1.5;       ///< trigger = max(min, factor * p99)
};

struct ServerOptions {
  int shards = 4;             ///< worker processes (HLTS_SERVE_SHARDS)
  int port = 0;               ///< 0 = ephemeral (HLTS_SERVE_PORT)
  std::size_t max_request_bytes = 4u << 20;  ///< request-line cap
  std::string journal_root;   ///< required; shard k journals in shard-<k>/
  engine::EngineOptions engine{};  ///< base options for every worker
  LifecycleOptions lifecycle{};

  /// Applies HLTS_SERVE_SHARDS / HLTS_SERVE_PORT /
  /// HLTS_SERVE_MAX_REQUEST_BYTES / HLTS_SERVE_RESPAWN /
  /// HLTS_SERVE_BREAKER_FAILURES / HLTS_SERVE_HEDGE on top of `base`
  /// (explicit fields win; malformed values throw Error(Input) via the
  /// knob registry).
  [[nodiscard]] static ServerOptions from_env(ServerOptions base);
};

class Server {
 public:
  /// Binds the listener and forks the workers.  No threads yet.
  explicit Server(ServerOptions options);
  /// Joins everything; if run() was never driven to shutdown, stops first.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] int port() const { return listener_.port(); }

  /// Serves until a client sends {"op":"shutdown"} (or stop() is called
  /// from another thread).  Drains workers before returning.
  void run();

  /// Initiates the same orderly shutdown as the protocol op.
  void stop();

 private:
  struct Worker {
    int shard = 0;
    pid_t pid = -1;
    util::net::Fd fd;        ///< supervisor end of the socketpair
    std::mutex write_mutex;  ///< serializes frames onto fd (and fd swaps)
    std::thread reader;
    bool alive = true;       ///< guarded by state_mutex_
    std::string journal_dir;
    // Lifecycle state, guarded by state_mutex_.
    std::unique_ptr<CircuitBreaker> breaker;
    std::unique_ptr<RespawnPolicy> respawn;
    Ewma latency_ewma{};            ///< ms, per-result
    std::int64_t respawn_at_ms = -1;  ///< earliest respawn instant; -1 = none
    std::int64_t respawns = 0;
    std::int64_t hedges_won = 0;
    std::int64_t hedges_cancelled = 0;
  };

  /// One client connection; result frames are written from worker-reader
  /// threads, so writes go through the mutex.
  struct Conn {
    util::net::Fd fd;
    std::mutex write_mutex;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// A request awaiting its result -- the supervisor's replay copy.
  struct Pending {
    int shard = -1;
    std::string name;          ///< client-visible job name (routing key)
    util::JsonValue request;   ///< FlowRequestV1 document (for resubmit)
    ConnPtr conn;
    std::string token;         ///< flow_token ("" = no dedup)
    std::int64_t sent_ms = 0;  ///< when last forwarded (hedge/latency clock)
    bool is_hedge = false;     ///< this entry is the hedged second copy
    std::uint64_t partner = 0; ///< the other tag of a hedged pair (0 = none)
  };

  /// An outstanding cluster-health fan-out.
  struct HealthQuery {
    ConnPtr conn;
    std::set<std::uint64_t> outstanding;  ///< per-worker probe tags
    bool http = false;  ///< reply as an HTTP response and close
  };
  /// One probe tag of a health fan-out, with the shard it went to (so a
  /// dying shard can be struck from the query instead of hanging it).
  struct ProbeEntry {
    std::shared_ptr<HealthQuery> query;
    int shard = -1;
  };

  /// An outstanding adopt sent to `peer` for `dead`'s journal.
  struct Adoption {
    int dead = -1;
    int peer = -1;
    std::set<std::uint64_t> owned;  ///< pending tags the dead shard held
  };

  void accept_loop();
  void client_loop(ConnPtr conn);
  void worker_reader_loop(int shard);
  /// The failover state machine (see file comment).  Called from the dead
  /// worker's reader thread after EOF.
  void on_worker_death(int shard);
  /// Peer adoption of a dead shard's journal + resubmits (state_mutex_
  /// held).  Returns error replies to flush outside the lock.
  void fail_over_locked(int shard,
                        std::vector<std::pair<ConnPtr, std::string>>* replies);
  /// Asks the zygote for a fresh worker process for `shard`; returns false
  /// when the zygote is gone.  Serialized by zygote_mutex_.
  [[nodiscard]] bool spawn_via_zygote(int shard, util::net::Fd* fd, pid_t* pid);
  /// The respawn/hedge ticker (started by run() alongside the readers).
  void lifecycle_loop();
  /// A respawned worker's `ready` frame: rejoin the ring, re-point the
  /// recovered tags, resubmit the rest.
  void on_worker_ready(int shard, const std::set<std::uint64_t>& recovered);
  void handle_submit(const ConnPtr& conn, const util::JsonValue& doc);
  void handle_health(const ConnPtr& conn, bool http);
  void finish_health_probe(std::uint64_t tag);
  /// Routes + forwards one pending request (state_mutex_ held by caller).
  void forward_locked(std::uint64_t tag);
  void send_to_worker(int shard, const std::string& frame);
  void reply(const ConnPtr& conn, const std::string& line);
  [[nodiscard]] std::uint64_t next_tag() {
    return tag_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  [[nodiscard]] std::map<int, bool> alive_map_locked() const;

  ServerOptions options_;
  util::net::Listener listener_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// The zygote: a single-threaded forked child that forks workers on
  /// request, because this (multithreaded) process cannot.  The control
  /// socket carries "spawn <shard>" lines one way and SCM_RIGHTS worker
  /// descriptors + pid lines the other; zygote_mutex_ serializes the
  /// request/response exchanges.
  std::mutex zygote_mutex_;
  util::net::Fd zygote_fd_;
  pid_t zygote_pid_ = -1;

  /// Removes one pending entry and its flow-token index row (state_mutex_
  /// held).  Every pending_ erase goes through here so the in-flight token
  /// map can never dangle.
  void erase_pending_locked(std::map<std::uint64_t, Pending>::iterator it);
  /// Memoizes a delivered result line under its flow_token (bounded FIFO;
  /// refusals are not memoized so a retry can re-execute).
  void remember_token_locked(const std::string& token,
                             const std::string& line, bool memoize);

  std::mutex state_mutex_;
  ShardRouter router_;
  ClusterView view_;
  std::map<std::uint64_t, Pending> pending_;
  std::map<std::uint64_t, ProbeEntry> health_probes_;
  std::map<std::uint64_t, Adoption> adoptions_;
  /// Idempotency (flow_token dedup): a token in flight maps to its pending
  /// tag (a retried submit re-attaches to it); a completed token maps to
  /// the exact serialized reply line (a retried submit replays it
  /// bit-identically).  The done cache is FIFO-bounded by kTokenCacheCap.
  std::map<std::string, std::uint64_t> token_inflight_;
  std::map<std::string, std::string> token_done_;
  std::deque<std::string> token_done_order_;
  static constexpr std::size_t kTokenCacheCap = 4096;
  bool stopping_ = false;

  std::mutex conns_mutex_;
  std::vector<ConnPtr> conns_;
  std::vector<std::thread> conn_threads_;

  std::atomic<std::uint64_t> tag_counter_{0};
  std::thread acceptor_;

  /// Lifecycle ticker state.  latency_window_ feeds the hedge trigger
  /// (p99-derived); guarded by state_mutex_ like the rest.
  LatencyWindow latency_window_{256};
  std::thread lifecycle_;
  std::condition_variable lifecycle_cv_;
};

}  // namespace hlts::serve
