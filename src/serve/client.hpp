// Blocking NDJSON client for hlts_serve (used by hlts_load and the serve
// test suite).
//
// One Client owns one TCP connection.  submit() is synchronous; for load
// generation the split send_submit()/read_response() pair pipelines many
// requests on one connection (responses arrive in completion order --
// correlate by FlowResultV1::name, so give every request a unique name).
//
// ClientOptions adds the robustness surface: connect/read/write timeouts
// (a stalled peer becomes Error(Transient) instead of a forever-block) and
// the chaos flag routing this connection through util/net_chaos.  On top
// of Client sits RetryClient, the idempotent wrapper: it stamps every
// request with a flow_token, and on a transport failure (timeout, reset,
// torn frame, refused connect) reconnects with bounded exponential backoff
// and resubmits the *same* token -- the supervisor deduplicates by token,
// so the retried request is answered exactly once, with the original
// bit-identical result even if the first attempt actually executed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/api.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hlts::serve {

struct ClientOptions {
  int connect_timeout_ms = 10000;  ///< 0 = block indefinitely
  /// 0 = wait forever: synthesis jobs legitimately run long, so only
  /// latency-bounded callers (load generators, health probes) set this.
  int read_timeout_ms = 0;
  int write_timeout_ms = 10000;    ///< 0 = block indefinitely
  int retries = 0;          ///< extra attempts by RetryClient
  int backoff_ms = 50;      ///< first retry backoff; doubles per attempt
  int backoff_cap_ms = 2000;
  bool chaos = false;       ///< route through util/net_chaos injections
  /// Treat an explicit "rejected" result as retryable too (chaos-grid
  /// mode: a journal refusal under injected disk faults is transient).
  bool retry_rejected = false;

  /// Applies HLTS_CLIENT_CONNECT_TIMEOUT_MS / HLTS_CLIENT_READ_TIMEOUT_MS /
  /// HLTS_CLIENT_WRITE_TIMEOUT_MS / HLTS_CLIENT_RETRIES on top of `base`
  /// (malformed values throw Error(Input) via the knob registry).
  [[nodiscard]] static ClientOptions from_env(ClientOptions base);
};

class Client {
 public:
  /// Connects to 127.0.0.1:`port`; throws Error(Transient) on refusal or
  /// connect timeout.
  explicit Client(int port, std::size_t max_line_bytes = 16u << 20,
                  const ClientOptions& options = ClientOptions{});

  struct Response {
    bool ok = false;
    std::string error;                        ///< when !ok
    std::optional<api::FlowResultV1> result;  ///< submit responses
    std::optional<util::JsonValue> health;    ///< health responses
  };

  /// Fire-and-forget half of a pipelined submit.
  void send_submit(const api::FlowRequestV1& request);
  /// Next response line; nullopt on connection close.  Throws
  /// Error(Transient) on read timeout.
  [[nodiscard]] std::optional<Response> read_response();

  /// Synchronous submit (send + one response).
  [[nodiscard]] Response submit(const api::FlowRequestV1& request);
  /// Cluster health snapshot.
  [[nodiscard]] Response health();
  /// Asks the supervisor to SIGKILL shard `shard` (test/chaos hook).
  [[nodiscard]] bool kill_shard(int shard);
  /// Orderly cluster shutdown; true when the server acknowledged.
  bool shutdown();

 private:
  bool chaos_ = false;
  util::net::Fd fd_;
  util::net::LineReader reader_;
};

/// Idempotent retrying front end over Client (see file comment).  Lazily
/// (re)connects; one RetryClient is one logical client identity, not one
/// connection.
class RetryClient {
 public:
  explicit RetryClient(int port, ClientOptions options = ClientOptions{},
                       std::size_t max_line_bytes = 16u << 20);

  /// Synchronous submit with transport-level retry.  If `request` has no
  /// flow_token one is generated (unique within this process); retries
  /// reuse it, so the server answers this logical request exactly once.
  /// After the retry budget is exhausted the last failure is returned as
  /// an error Response (never thrown).
  [[nodiscard]] Client::Response submit(api::FlowRequestV1 request);

  /// Transport failures that forced a reconnect, across all submits.
  [[nodiscard]] std::int64_t reconnects() const { return reconnects_; }

 private:
  int port_;
  ClientOptions options_;
  std::size_t max_line_bytes_;
  std::optional<Client> client_;
  std::int64_t reconnects_ = 0;
};

}  // namespace hlts::serve
