// Blocking NDJSON client for hlts_serve (used by hlts_load and the serve
// test suite).
//
// One Client owns one TCP connection.  submit() is synchronous; for load
// generation the split send_submit()/read_response() pair pipelines many
// requests on one connection (responses arrive in completion order --
// correlate by FlowResultV1::name, so give every request a unique name).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/api.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hlts::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:`port`; throws Error(Transient) on refusal.
  explicit Client(int port, std::size_t max_line_bytes = 16u << 20);

  struct Response {
    bool ok = false;
    std::string error;                        ///< when !ok
    std::optional<api::FlowResultV1> result;  ///< submit responses
    std::optional<util::JsonValue> health;    ///< health responses
  };

  /// Fire-and-forget half of a pipelined submit.
  void send_submit(const api::FlowRequestV1& request);
  /// Next response line; nullopt on connection close.
  [[nodiscard]] std::optional<Response> read_response();

  /// Synchronous submit (send + one response).
  [[nodiscard]] Response submit(const api::FlowRequestV1& request);
  /// Cluster health snapshot.
  [[nodiscard]] Response health();
  /// Asks the supervisor to SIGKILL shard `shard` (test/chaos hook).
  [[nodiscard]] bool kill_shard(int shard);
  /// Orderly cluster shutdown; true when the server acknowledged.
  bool shutdown();

 private:
  util::net::Fd fd_;
  util::net::LineReader reader_;
};

}  // namespace hlts::serve
