// Cluster health: per-shard HealthV1 snapshots merged into one view.
//
// The supervisor polls each worker for its api::HealthV1 snapshot and folds
// them into a ClusterView.  The monotone counters (submitted, retries, ...)
// go through join-semilattices (util/lattice.hpp): a MapLattice keyed by
// shard id holding a MaxLattice per counter, so merging is associative,
// commutative and idempotent -- a re-delivered or stale snapshot can never
// double-count, and the cluster total is just the sum of the revealed
// per-shard maxima.  The three gauges (queue_depth, in_flight, running) are
// not monotone; the view keeps the latest observation per shard and sums
// those.
#pragma once

#include <cstdint>
#include <map>

#include "api/api.hpp"
#include "util/json.hpp"
#include "util/lattice.hpp"

namespace hlts::serve {

/// The lattice image of one shard's monotone health counters; element type
/// for merges is api::HealthV1.  Join is fieldwise.
class ShardCounters : public util::LatticeMixin<ShardCounters> {
 public:
  void do_merge(const api::HealthV1& h) {
    submitted.merge(h.submitted);
    retries.merge(h.retries);
    stalls.merge(h.stalls);
    sheds.merge(h.sheds);
    rejected.merge(h.rejected);
    recovered.merge(h.recovered);
    journal_lag.merge(h.journal_lag);
    journaling.merge(h.journaling);
    respawns.merge(h.respawns);
    hedges_won.merge(h.hedges_won);
    hedges_cancelled.merge(h.hedges_cancelled);
    quarantined.merge(h.quarantined);
  }
  void do_merge(const ShardCounters& o) {
    submitted.merge_in(o.submitted);
    retries.merge_in(o.retries);
    stalls.merge_in(o.stalls);
    sheds.merge_in(o.sheds);
    rejected.merge_in(o.rejected);
    recovered.merge_in(o.recovered);
    journal_lag.merge_in(o.journal_lag);
    journaling.merge_in(o.journaling);
    respawns.merge_in(o.respawns);
    hedges_won.merge_in(o.hedges_won);
    hedges_cancelled.merge_in(o.hedges_cancelled);
    quarantined.merge_in(o.quarantined);
  }
  /// The mixin's merge_in joins reveal(); for a product lattice that is the
  /// lattice itself.
  [[nodiscard]] const ShardCounters& reveal() const { return *this; }

  util::MaxLattice<std::int64_t> submitted{0}, retries{0}, stalls{0}, sheds{0},
      rejected{0}, recovered{0}, journal_lag{0};
  util::BoolLattice journaling;
  // Lifecycle counters (V1.1): respawns and hedge outcomes are monotone over
  // a shard slot's lifetime (they count supervisor-side events, surviving
  // worker restarts); quarantine is a one-way latch by construction, so a
  // BoolLattice models it exactly.
  util::MaxLattice<std::int64_t> respawns{0}, hedges_won{0},
      hedges_cancelled{0};
  util::BoolLattice quarantined;
};

/// The supervisor's merged view of the whole cluster.  Not thread-safe; the
/// owner serializes access.
class ClusterView {
 public:
  /// Folds one snapshot in (idempotent for the counters; last-observation
  /// for the gauges).
  void observe(const api::HealthV1& h);

  /// {"schema_version":1,"cluster":{totals...},"shards":[HealthV1...]}.
  /// `alive` marks shards still running (dead shards keep reporting their
  /// final counters -- those jobs happened).
  [[nodiscard]] util::JsonValue to_json(
      const std::map<int, bool>& alive) const;

 private:
  util::MapLattice<int, ShardCounters> counters_;
  std::map<int, api::HealthV1> last_;  ///< latest raw snapshot per shard
};

}  // namespace hlts::serve
