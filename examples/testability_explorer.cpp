// Testability-exploration example: watch Algorithm 1 work, merger by
// merger, on a benchmark -- the testability analysis, the balance-ranked
// candidates, and the dE/dH trade-off of every committed transformation.
//
//   ./testability_explorer [benchmark] [bits]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "etpn/etpn.hpp"
#include "sched/schedule.hpp"
#include "testability/balance.hpp"

int main(int argc, char** argv) {
  using namespace hlts;

  const std::string bench = argc > 1 ? argv[1] : "diffeq";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 8;

  dfg::Dfg g = benchmarks::make_benchmark(bench);

  // Show the initial per-node testability of the default allocation.
  sched::Schedule s0 = sched::asap(g);
  etpn::Binding b0 = etpn::Binding::default_binding(g);
  etpn::Etpn e0 = etpn::build_etpn(g, s0, b0);
  testability::TestabilityAnalysis analysis(e0.data_path);

  std::cout << "initial testability of '" << bench << "' (default allocation)\n";
  std::cout << std::left << std::setw(28) << "node" << std::right
            << std::setw(8) << "CC" << std::setw(6) << "SC" << std::setw(8)
            << "CO" << std::setw(6) << "SO" << "\n";
  for (etpn::DpNodeId n : e0.data_path.node_ids()) {
    const auto& node = e0.data_path.node(n);
    if (node.kind != etpn::DpNodeKind::Register &&
        node.kind != etpn::DpNodeKind::Module) {
      continue;
    }
    auto c = analysis.node_controllability(n);
    auto o = analysis.node_observability(n);
    std::cout << std::left << std::setw(28) << node.name.substr(0, 27)
              << std::right << std::fixed << std::setprecision(3)
              << std::setw(8) << c.comb << std::setw(6) << std::setprecision(0)
              << c.seq << std::setw(8) << std::setprecision(3) << o.comb
              << std::setw(6) << std::setprecision(0) << o.seq << "\n";
  }

  // The top balance-ranked merger candidates.
  auto candidates = testability::select_balance_candidates(g, b0, e0, analysis, 5);
  std::cout << "\ntop balance-ranked merger candidates:\n";
  for (const auto& c : candidates) {
    if (c.kind == testability::MergeCandidate::Kind::Modules) {
      std::cout << "  modules   [" << b0.module_label(g, c.module_a) << " | "
                << b0.module_label(g, c.module_b) << "]";
    } else {
      std::cout << "  registers [" << b0.reg_label(g, c.reg_a) << " | "
                << b0.reg_label(g, c.reg_b) << "]";
    }
    std::cout << "  score=" << std::setprecision(3) << c.score
              << (c.creates_self_loop ? "  (self-loop!)" : "") << "\n";
  }

  // Run Algorithm 1 and narrate the committed trajectory.
  core::SynthesisParams params;
  params.bits = bits;
  core::SynthesisResult result = core::integrated_synthesis(g, params);
  std::cout << "\nAlgorithm 1 trajectory (" << result.trajectory.size()
            << " mergers):\n";
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& rec = result.trajectory[i];
    std::cout << "  " << std::setw(2) << i + 1 << ". " << rec.description
              << "\n      dE=" << std::setprecision(0) << rec.delta_e
              << " steps, dH=" << std::setprecision(2) << rec.delta_h
              << " (x0.01mm^2), E=" << rec.exec_time << ", H="
              << std::setprecision(3) << rec.hw_cost << ", regs="
              << rec.registers << ", modules=" << rec.modules
              << ", balance=" << rec.balance_index << "\n";
  }
  std::cout << "\nfinal: " << result.binding.num_alive_modules()
            << " modules, " << result.binding.num_alive_regs()
            << " registers, " << result.exec_time << " control steps, "
            << std::setprecision(3) << result.cost.total() << " mm^2\n";
  return 0;
}
