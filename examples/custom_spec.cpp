// Custom-specification example: write a behavioral design in the DSL, let
// the front end compile it to a DFG, synthesize it with the integrated
// test-synthesis algorithm, and dump the resulting RTL as Verilog.
//
//   ./custom_spec [path-to-spec]
//
// Without an argument, a built-in second-order IIR filter section is used.
// The example shows both front-end entry points: compile_or_error() for
// untrusted input (a file from the command line -- malformed text becomes a
// Diagnostic with line/column, not an exception) and the throwing compile()
// for the known-good built-in spec.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/flows.hpp"
#include "frontend/parser.hpp"
#include "report/schedule_view.hpp"
#include "rtl/rtl.hpp"

namespace {

constexpr const char* kDefaultSpec = R"(
-- A direct-form-II biquad section: the kind of kernel the paper's intro
-- motivates (DSP data paths synthesized from behavioral code).
design biquad {
  input x, w1, w2, b0, b1, b2, a1, a2;
  output register y, w1n, w2n;

  w0  = x - a1 * w1 - a2 * w2;
  y   = b0 * w0 + b1 * w1 + b2 * w2;
  w1n = w0;
  w2n = w1;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hlts;

  dfg::Dfg g;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    // User-supplied specs go through the non-throwing entry point: a syntax
    // or semantic error is reported with its source position and a clean
    // exit instead of an unhandled exception.
    frontend::CompileResult compiled = frontend::compile_or_error(buffer.str());
    if (!compiled) {
      std::cerr << argv[1];
      if (compiled.error.line > 0) {
        std::cerr << ":" << compiled.error.line << ":" << compiled.error.column;
      }
      std::cerr << ": " << compiled.error.message << "\n";
      return 1;
    }
    g = std::move(*compiled.dfg);
  } else {
    // The built-in spec is known good, so the throwing compile() is fine.
    g = frontend::compile(kDefaultSpec);
  }
  std::cout << "compiled design '" << g.name() << "': " << g.num_ops()
            << " operations, " << g.num_vars() << " variables, critical path "
            << g.critical_path_ops() << "\n\n";

  core::FlowParams params;
  params.bits = 8;
  core::FlowResult ours = core::run_flow(core::FlowKind::Ours, g, params);
  std::cout << report::render_schedule(g, ours.schedule, ours.binding) << "\n";
  std::cout << "modules=" << ours.modules << " registers=" << ours.registers
            << " muxes=" << ours.muxes << " area=" << ours.cost.total()
            << " mm^2  balance=" << ours.balance_index << "\n\n";

  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, ours.schedule, ours.binding, params.bits);
  std::cout << design.to_verilog();
  return 0;
}
