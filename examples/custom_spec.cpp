// Custom-specification example: write a behavioral design in the DSL, let
// the front end compile it to a DFG, synthesize it with the integrated
// test-synthesis algorithm, and dump the resulting RTL as Verilog.
//
//   ./custom_spec [path-to-spec]
//
// Without an argument, a built-in second-order IIR filter section is used.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/flows.hpp"
#include "frontend/parser.hpp"
#include "report/schedule_view.hpp"
#include "rtl/rtl.hpp"

namespace {

constexpr const char* kDefaultSpec = R"(
-- A direct-form-II biquad section: the kind of kernel the paper's intro
-- motivates (DSP data paths synthesized from behavioral code).
design biquad {
  input x, w1, w2, b0, b1, b2, a1, a2;
  output register y, w1n, w2n;

  w0  = x - a1 * w1 - a2 * w2;
  y   = b0 * w0 + b1 * w1 + b2 * w2;
  w1n = w0;
  w2n = w1;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hlts;

  std::string source = kDefaultSpec;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  dfg::Dfg g = frontend::compile(source);
  std::cout << "compiled design '" << g.name() << "': " << g.num_ops()
            << " operations, " << g.num_vars() << " variables, critical path "
            << g.critical_path_ops() << "\n\n";

  core::FlowParams params;
  params.bits = 8;
  core::FlowResult ours = core::run_flow(core::FlowKind::Ours, g, params);
  std::cout << report::render_schedule(g, ours.schedule, ours.binding) << "\n";
  std::cout << "modules=" << ours.modules << " registers=" << ours.registers
            << " muxes=" << ours.muxes << " area=" << ours.cost.total()
            << " mm^2  balance=" << ours.balance_index << "\n\n";

  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, ours.schedule, ours.binding, params.bits);
  std::cout << design.to_verilog();
  return 0;
}
