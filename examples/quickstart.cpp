// Quickstart: synthesize one benchmark with the integrated test-synthesis
// algorithm and print what came out.
//
//   ./quickstart [benchmark] [bits]
//
// Demonstrates the core public API: build (or load) a DFG, run a flow, and
// inspect schedule, allocation, cost and testability.
#include <cstdlib>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  if (std::getenv("HLTS_DEBUG") != nullptr) set_log_level(LogLevel::Debug);

  const std::string bench = argc > 1 ? argv[1] : "ex";
  core::FlowParams params;
  params.bits = argc > 2 ? std::atoi(argv[2]) : 8;
  if (argc > 3) params.alpha = std::atof(argv[3]);
  if (argc > 4) params.beta = std::atof(argv[4]);
  if (argc > 5) params.k = std::atoi(argv[5]);

  dfg::Dfg g = benchmarks::make_benchmark(bench);
  std::cout << "benchmark " << g.name() << ": " << g.num_ops() << " ops, "
            << g.num_vars() << " vars, critical path "
            << g.critical_path_ops() << " steps\n"
            << "trial evaluation: " << util::ThreadPool::default_threads()
            << " thread(s) (set HLTS_THREADS to change; results are "
               "identical for any count)\n\n";

  for (const core::FlowResult& r : core::run_all_flows(g, params)) {
    std::cout << "== " << r.name << " ==\n"
              << "  steps=" << r.exec_time << " modules=" << r.modules
              << " registers=" << r.registers << " muxes=" << r.muxes
              << " self_loops=" << r.self_loops << "\n"
              << "  area=" << r.cost.total() << " mm^2"
              << "  balance=" << r.balance_index
              << "  seq_depth(max/total)=" << r.seq_depth_max << "/"
              << r.seq_depth_total << "\n";
    std::cout << "  modules:";
    for (const auto& m : r.module_allocation) std::cout << "  " << m;
    std::cout << "\n  registers:";
    for (const auto& reg : r.register_allocation) std::cout << "  " << reg;
    std::cout << "\n\n";
  }
  return 0;
}
