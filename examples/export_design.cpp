// Export example: synthesize a benchmark, run ATPG, and write everything an
// external tool flow needs into a directory:
//
//   <out>/<bench>_rtl.v       behavioral RTL (registers, FUs, controller)
//   <out>/<bench>_netlist.v   structural gate-level netlist
//   <out>/<bench>_tb.v        self-checking testbench replaying the ATPG
//                             test set against golden responses
//
//   ./export_design [benchmark] [bits] [outdir]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "atpg/atpg.hpp"
#include "atpg/testbench.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "gates/verilog.hpp"
#include "rtl/elaborate.hpp"

int main(int argc, char** argv) {
  using namespace hlts;

  const std::string bench = argc > 1 ? argv[1] : "diffeq";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::filesystem::path outdir = argc > 3 ? argv[3] : "export";
  std::filesystem::create_directories(outdir);

  dfg::Dfg g = benchmarks::make_benchmark(bench);
  core::FlowResult ours = core::run_flow(core::FlowKind::Ours, g, {.bits = bits});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, ours.schedule, ours.binding, bits);
  rtl::Elaboration elab = rtl::elaborate(design);
  atpg::AtpgResult atpg_result =
      atpg::run_atpg(elab.netlist, design.steps() + 1, {});

  auto write = [&](const std::string& name, const std::string& contents) {
    const auto path = outdir / name;
    std::ofstream out(path);
    out << contents;
    std::cout << "wrote " << path.string() << " (" << contents.size()
              << " bytes)\n";
  };
  write(bench + "_rtl.v", design.to_verilog());
  write(bench + "_netlist.v",
        gates::to_structural_verilog(elab.netlist, bench));
  write(bench + "_tb.v",
        atpg::to_verilog_testbench(elab.netlist, bench, atpg_result.test_set));

  std::cout << "\n" << bench << " @ " << bits << " bits: "
            << elab.netlist.stats().gates << " gates, "
            << atpg_result.total_faults << " faults, coverage "
            << atpg_result.fault_coverage * 100 << "%, test length "
            << atpg_result.test_cycles << " cycles ("
            << atpg_result.num_sequences << " sequences, compacted from "
            << atpg_result.uncompacted_cycles << ")\n";
  return 0;
}
