// Full-flow example: synthesize a benchmark with all four flows, elaborate
// each result to gates, run ATPG, and print the paper-style comparison row
// (fault coverage / test generation time / test cycles / area).
//
//   ./full_flow [benchmark] [bits] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "atpg/atpg.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"

int main(int argc, char** argv) {
  using namespace hlts;

  const std::string bench = argc > 1 ? argv[1] : "ex";
  core::FlowParams params;
  params.bits = argc > 2 ? std::atoi(argv[2]) : 8;
  atpg::AtpgOptions atpg_options;
  atpg_options.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  if (const char* v = std::getenv("ATPG_ROUNDS")) {
    atpg_options.max_rounds = std::atoi(v);
  }
  if (const char* v = std::getenv("ATPG_SEQS")) {
    atpg_options.sequences_per_round = std::atoi(v);
  }
  if (const char* v = std::getenv("ATPG_BT")) {
    atpg_options.podem_backtrack_limit = std::atoi(v);
  }
  if (const char* v = std::getenv("ATPG_IDLE")) {
    atpg_options.max_idle_rounds = std::atoi(v);
  }

  dfg::Dfg g = benchmarks::make_benchmark(bench);
  std::cout << "benchmark " << g.name() << " @ " << params.bits << " bits\n\n";
  std::cout << std::left << std::setw(12) << "flow" << std::right
            << std::setw(8) << "gates" << std::setw(7) << "FFs" << std::setw(9)
            << "faults" << std::setw(10) << "coverage" << std::setw(9)
            << "tg(ms)" << std::setw(9) << "cycles" << std::setw(10)
            << "area\n";

  for (const core::FlowResult& r : core::run_all_flows(g, params)) {
    rtl::RtlDesign design =
        rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, params.bits);
    rtl::Elaboration elab = rtl::elaborate(design);
    const auto stats = elab.netlist.stats();
    atpg::AtpgResult a =
        atpg::run_atpg(elab.netlist, design.steps() + 1, atpg_options);
    std::cout << std::left << std::setw(12) << r.name << std::right
              << std::setw(8) << stats.gates << std::setw(7)
              << stats.flip_flops << std::setw(9) << a.total_faults
              << std::setw(9) << std::fixed << std::setprecision(2)
              << a.fault_coverage * 100 << "%" << std::setw(9)
              << std::setprecision(0) << a.tg_time_ms << std::setw(9)
              << a.test_cycles << std::setw(9) << std::setprecision(3)
              << r.cost.total() << "   (rnd " << a.detected_random << ", det "
              << a.detected_deterministic << ", unt " << a.untestable_proved
              << ")\n";
  }
  return 0;
}
