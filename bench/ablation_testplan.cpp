// Extension study: test-plan controller support.
//
// The paper synthesizes testable *data paths* "assuming that the controller
// can be modified to support the test plan."  This bench implements that
// assumption -- a `hold` input freezing the one-hot controller in its
// current step -- and measures what the test plan buys on top of each
// synthesis flow: the tester can park the machine in any step and pump
// patterns through the parked configuration.
//
//   ./ablation_testplan [bits] [seeds]
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  report::Table table({"benchmark", "flow", "controller", "faults", "coverage",
                       "tg (ms)", "cycles"});
  for (const char* name : {"ex", "dct", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    core::FlowParams params = bench::paper_params(bits);
    for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowResult flow = core::run_flow(kind, g, params);
      rtl::RtlDesign design = rtl::RtlDesign::from_synthesis(
          g, flow.schedule, flow.binding, bits);
      for (bool test_hold : {false, true}) {
        rtl::Elaboration elab =
            [&] {
              rtl::ElaborateOptions eo;
              eo.test_hold = test_hold;
              return rtl::elaborate(design, eo);
            }();
        double coverage = 0, tg = 0, cycles = 0;
        std::size_t faults = 0;
        for (int s = 0; s < seeds; ++s) {
          atpg::AtpgOptions options;
          options.seed = 1 + static_cast<std::uint64_t>(s) * 7919;
          atpg::AtpgResult r =
              atpg::run_atpg(elab.netlist, design.steps() + 1, options);
          coverage += r.fault_coverage;
          tg += r.tg_time_ms;
          cycles += static_cast<double>(r.test_cycles);
          faults = r.total_faults;
        }
        table.add_row({name, flow.name, test_hold ? "with hold" : "free-run",
                       report::fmt_int(static_cast<long>(faults)),
                       report::fmt_percent(coverage / seeds),
                       report::fmt_double(tg / seeds, 1),
                       report::fmt_int(static_cast<long>(cycles / seeds))});
      }
    }
    table.add_separator();
  }
  std::cout << "Extension: test-plan controller support (hold input)\n"
            << table.render();
  return 0;
}
