// Ablation: sensitivity of the integrated synthesis to (k, alpha, beta).
//
// The paper: "it seems that the chosen parameters do not influence so much
// the final results."  This bench sweeps k and the (alpha, beta) weighting
// on the three table benchmarks and reports the resulting design metrics.
#include <iostream>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "report/table.hpp"

int main() {
  using namespace hlts;
  report::Table table({"benchmark", "k", "alpha", "beta", "steps", "modules",
                       "registers", "muxes", "area", "balance"});
  for (const char* name : {"ex", "dct", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    for (int k : {1, 3, 5, 8}) {
      for (auto [alpha, beta] : std::vector<std::pair<double, double>>{
               {2, 1}, {1, 1}, {10, 1}, {1, 10}}) {
        core::FlowParams p;
        p.bits = 8;
        p.k = k;
        p.alpha = alpha;
        p.beta = beta;
        core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, p);
        table.add_row({name, report::fmt_int(k), report::fmt_double(alpha, 0),
                       report::fmt_double(beta, 0),
                       report::fmt_int(r.exec_time),
                       report::fmt_int(r.modules),
                       report::fmt_int(r.registers), report::fmt_int(r.muxes),
                       report::fmt_double(r.cost.total(), 3),
                       report::fmt_double(r.balance_index, 3)});
      }
    }
    table.add_separator();
  }
  std::cout << "Ablation: (k, alpha, beta) sensitivity of Algorithm 1\n"
            << table.render();
  return 0;
}
