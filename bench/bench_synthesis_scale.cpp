// Scaling bench for Algorithm 1's trial evaluation: sweeps the trial
// thread count over EWF / DCT / Diffeq and writes BENCH_synthesis.json so
// the perf trajectory of the synthesis loop has data.
//
// Two knobs are exercised:
//   - SynthesisParams::num_threads -- the k candidate trials of each
//     iteration fan out across a reusable pool (bit-identical results for
//     every thread count, verified here on every run);
//   - SynthesisParams::trial_cache -- candidates untouched by the committed
//     merger reuse their dE/dH across iterations;
//   - SynthesisParams::incremental -- committed-state analyses are patched
//     in place (etpn::apply_merge_patch + TestabilityAnalysis::update over
//     the dirty cone) instead of rebuilt from scratch.  The bench reports
//     wall-clock and the testability.node_visits counter for both modes;
//     the visit ratio is the measured dirty-cone saving.
//
// The sweep configs run with the cache on (that is the production-scale
// configuration); the baseline row is the seed-equivalent exact path
// (serial, no cache), so the JSON records both the caching and the
// threading contribution.  Usage:
//
//   bench_synthesis_scale [output.json] [reps]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using hlts::core::SynthesisParams;
using hlts::core::SynthesisResult;

/// Exact signature of a run: every committed merger with its bitwise cost
/// numbers.  Two runs are "bit-identical" iff their signatures match.
std::string signature(const SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& rec : r.trajectory) {
    os << rec.description << ';' << rec.exec_time << ';' << rec.hw_cost
       << ';' << rec.delta_c << '|';
  }
  os << "final;" << r.exec_time << ';' << r.cost.total();
  return os.str();
}

double best_of(int reps, const hlts::dfg::Dfg& g, const SynthesisParams& p,
               std::string* sig) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    SynthesisResult r = hlts::core::integrated_synthesis(g, p);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
    if (rep == 0) *sig = signature(r);
  }
  return best;
}

/// One run of a mode (incremental on/off) with a trace installed: best
/// wall-clock over `reps` plus the deterministic analysis-work counters of
/// a single run.
struct ModeSample {
  double ms = 0;
  std::string sig;
  std::int64_t node_visits = 0;       ///< testability.node_visits
  std::int64_t incremental_updates = 0;
};

ModeSample sample_mode(int reps, const hlts::dfg::Dfg& g,
                       const SynthesisParams& p) {
  ModeSample s;
  s.ms = best_of(reps, g, p, &s.sig);
  hlts::util::Trace trace;
  {
    hlts::util::Trace::Scope scope(&trace);
    (void)hlts::core::integrated_synthesis(g, p);
  }
  const auto counters = trace.snapshot().counters;
  if (auto it = counters.find("testability.node_visits"); it != counters.end())
    s.node_visits = it->second;
  if (auto it = counters.find("testability.incremental_updates");
      it != counters.end())
    s.incremental_updates = it->second;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_synthesis.json";
  const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;

  const std::size_t hw = hlts::util::ThreadPool::default_threads();
  std::vector<int> thread_configs{1, 2, 4, static_cast<int>(hw)};
  std::sort(thread_configs.begin(), thread_configs.end());
  thread_configs.erase(
      std::unique(thread_configs.begin(), thread_configs.end()),
      thread_configs.end());

  SynthesisParams common;
  common.bits = 8;
  common.k = 8;  // wider candidate fan-out than the paper tables' k=5,
                 // so each iteration has enough independent trials to fill
                 // the pool

  std::ostringstream json;
  json.precision(17);
  json << "{\n"
       << "  \"bench\": \"bench_synthesis_scale\",\n"
       << "  \"default_threads\": " << hw << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"params\": {\"bits\": " << common.bits << ", \"k\": " << common.k
       << "},\n"
       << "  \"benchmarks\": [\n";

  bool first_bench = true;
  int not_identical = 0;
  for (const char* name : {"ewf", "dct", "diffeq"}) {
    hlts::dfg::Dfg g = hlts::benchmarks::make_benchmark(name);

    // Seed-equivalent exact path: serial, no trial cache.
    SynthesisParams baseline = common;
    baseline.num_threads = 1;
    baseline.trial_cache = false;
    std::string baseline_sig;
    const double baseline_ms = best_of(reps, g, baseline, &baseline_sig);

    // Serial reference for the bit-identity check of the sweep configs.
    SynthesisParams serial = common;
    serial.num_threads = 1;
    serial.trial_cache = true;
    std::string serial_sig;
    const double serial_ms = best_of(reps, g, serial, &serial_sig);

    SynthesisResult shape = hlts::core::integrated_synthesis(g, baseline);
    std::printf("%-7s baseline (serial, no cache): %8.1f ms  (%zu mergers)\n",
                name, baseline_ms, shape.trajectory.size());

    if (!first_bench) json << ",\n";
    first_bench = false;
    json << "    {\n"
         << "      \"name\": \"" << name << "\",\n"
         << "      \"mergers\": " << shape.trajectory.size() << ",\n"
         << "      \"baseline_serial_nocache_ms\": " << baseline_ms << ",\n"
         << "      \"configs\": [\n";

    for (std::size_t ci = 0; ci < thread_configs.size(); ++ci) {
      const int threads = thread_configs[ci];
      SynthesisParams p = common;
      p.num_threads = threads;
      p.trial_cache = true;
      std::string sig;
      const double ms = threads == 1 ? serial_ms : best_of(reps, g, p, &sig);
      if (threads == 1) sig = serial_sig;
      const bool identical = sig == serial_sig;
      if (!identical) ++not_identical;
      const double speedup = ms > 0 ? baseline_ms / ms : 0;
      std::printf(
          "%-7s threads=%-2d cache=on: %8.1f ms   speedup vs baseline %.2fx"
          "   identical_to_serial=%s\n",
          name, threads, ms, speedup, identical ? "yes" : "NO");
      json << "        {\"threads\": " << threads << ", \"trial_cache\": true"
           << ", \"ms\": " << ms << ", \"speedup_vs_baseline\": " << speedup
           << ", \"identical_to_serial\": " << (identical ? "true" : "false")
           << "}" << (ci + 1 < thread_configs.size() ? "," : "") << "\n";
    }
    json << "      ],\n";

    // Incremental analysis layer vs full recompute, serial so the counter
    // ratio is exactly the dirty-cone saving per committed merger.
    SynthesisParams full_mode = common;
    full_mode.num_threads = 1;
    full_mode.trial_cache = true;
    full_mode.incremental = false;
    SynthesisParams inc_mode = full_mode;
    inc_mode.incremental = true;
    const ModeSample full_s = sample_mode(reps, g, full_mode);
    const ModeSample inc_s = sample_mode(reps, g, inc_mode);
    const bool inc_identical = inc_s.sig == full_s.sig;
    if (!inc_identical) ++not_identical;
    const double inc_speedup = inc_s.ms > 0 ? full_s.ms / inc_s.ms : 0;
    const double visit_ratio =
        inc_s.node_visits > 0
            ? static_cast<double>(full_s.node_visits) / inc_s.node_visits
            : 0;
    std::printf(
        "%-7s incremental: %8.1f ms vs full %8.1f ms (%.2fx); node visits "
        "%lld vs %lld (%.2fx fewer, %lld updates)  identical=%s\n",
        name, inc_s.ms, full_s.ms, inc_speedup,
        static_cast<long long>(inc_s.node_visits),
        static_cast<long long>(full_s.node_visits), visit_ratio,
        static_cast<long long>(inc_s.incremental_updates),
        inc_identical ? "yes" : "NO");
    json << "      \"incremental\": {\n"
         << "        \"full_ms\": " << full_s.ms << ",\n"
         << "        \"incremental_ms\": " << inc_s.ms << ",\n"
         << "        \"speedup_vs_full\": " << inc_speedup << ",\n"
         << "        \"node_visits_full\": " << full_s.node_visits << ",\n"
         << "        \"node_visits_incremental\": " << inc_s.node_visits
         << ",\n"
         << "        \"node_visit_reduction\": " << visit_ratio << ",\n"
         << "        \"incremental_updates\": " << inc_s.incremental_updates
         << ",\n"
         << "        \"identical_to_full\": "
         << (inc_identical ? "true" : "false") << "\n"
         << "      }\n    }";
  }
  json << "\n  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  if (!out) {
    std::cerr << "ERROR: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  if (not_identical > 0) {
    std::cerr << "ERROR: " << not_identical
              << " config(s) diverged from the serial trajectory\n";
    return 1;
  }
  return 0;
}
