// Scaling bench for Algorithm 1's trial evaluation: sweeps the trial
// thread count over all six benchmarks (ex / dct / diffeq / ewf / paulin /
// tseng) and writes BENCH_synthesis.json so the perf trajectory of the
// synthesis loop has data.
//
// Knobs exercised:
//   - SynthesisParams::num_threads -- the k candidate trials of each
//     iteration fan out across a reusable pool (bit-identical results for
//     every thread count, verified here on every run);
//   - SynthesisParams::trial_cache -- candidates untouched by the committed
//     merger reuse their dE/dH across iterations;
//   - SynthesisParams::incremental -- committed-state analyses are patched
//     in place (etpn::apply_merge_patch + TestabilityAnalysis::update over
//     the dirty cone) instead of rebuilt from scratch;
//   - fault-simulation packet width (HLTS_SIMD_WIDTH / FaultSimulator's
//     simd_width): gate evaluation over 64 / 256 / 512 lanes, reported as
//     Mgate-lane-evals/s per width with the detected fault set checked for
//     bit-identity across widths (and thread counts with --verify-serial).
//
// The sweep configs run with the cache on (that is the production-scale
// configuration); the baseline row is the seed-equivalent exact path
// (serial, no cache), so the JSON records both the caching and the
// threading contribution.  Per-trial time is wall-clock divided by the
// synth.trials_evaluated counter of the same configuration.  Usage:
//
//   bench_synthesis_scale [output.json] [reps] [--quick] [--verify-serial]
//                         [--compare committed.json]
//
//   --quick          one rep per configuration (CI smoke)
//   --verify-serial  extend the bit-identity matrix: fault-sim width x
//                    thread combinations and synthesis threads x
//                    incremental combinations
//   --compare FILE   warn (non-gating, exit 0) when a benchmark's serial
//                    per-trial time regressed >20% vs the committed JSON
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "core/synthesis.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using hlts::core::SynthesisParams;
using hlts::core::SynthesisResult;

/// Exact signature of a run: every committed merger with its bitwise cost
/// numbers.  Two runs are "bit-identical" iff their signatures match.
std::string signature(const SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& rec : r.trajectory) {
    os << rec.description << ';' << rec.exec_time << ';' << rec.hw_cost
       << ';' << rec.delta_c << '|';
  }
  os << "final;" << r.exec_time << ';' << r.cost.total();
  return os.str();
}

double best_of(int reps, const hlts::dfg::Dfg& g, const SynthesisParams& p,
               std::string* sig) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    SynthesisResult r = hlts::core::integrated_synthesis(g, p);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
    if (rep == 0) *sig = signature(r);
  }
  return best;
}

/// One run of a mode (incremental on/off) with a trace installed: best
/// wall-clock over `reps` plus the deterministic analysis-work counters of
/// a single run.
struct ModeSample {
  double ms = 0;
  std::string sig;
  std::int64_t node_visits = 0;       ///< testability.node_visits
  std::int64_t incremental_updates = 0;
  std::int64_t trials = 0;            ///< synth.trials_evaluated
};

ModeSample sample_mode(int reps, const hlts::dfg::Dfg& g,
                       const SynthesisParams& p) {
  ModeSample s;
  s.ms = best_of(reps, g, p, &s.sig);
  hlts::util::Trace trace;
  {
    hlts::util::Trace::Scope scope(&trace);
    (void)hlts::core::integrated_synthesis(g, p);
  }
  const auto counters = trace.snapshot().counters;
  if (auto it = counters.find("testability.node_visits"); it != counters.end())
    s.node_visits = it->second;
  if (auto it = counters.find("testability.incremental_updates");
      it != counters.end())
    s.incremental_updates = it->second;
  if (auto it = counters.find("synth.trials_evaluated"); it != counters.end())
    s.trials = it->second;
  return s;
}

// ---------------------------------------------------------------------------
// Fault-simulation throughput: detected_by over the synthesized design's
// netlist at every packet width, measured as Mgate-lane-evals/s.
// ---------------------------------------------------------------------------
struct FaultSimSample {
  int width = 0;
  double ms = 0;  ///< best wall-clock of one detected_by pass
  double mgle_per_s = 0;
  bool identical = true;           ///< detected set == width-64 serial set
  bool threads4_identical = true;  ///< --verify-serial: 4-thread run matches
};

std::vector<FaultSimSample> fault_sim_sweep(const hlts::dfg::Dfg& g, int reps,
                                            bool verify_serial,
                                            std::size_t* num_faults,
                                            std::size_t* num_gates,
                                            int* bad_configs) {
  namespace atpg = hlts::atpg;
  hlts::core::FlowResult r =
      hlts::core::run_flow(hlts::core::FlowKind::Ours, g, {.bits = 8});
  hlts::rtl::RtlDesign design =
      hlts::rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  hlts::rtl::Elaboration elab = hlts::rtl::elaborate(design);
  const hlts::gates::Netlist& nl = elab.netlist;

  atpg::FaultUniverse universe = atpg::FaultUniverse::collapsed(nl);
  const std::vector<atpg::Fault> faults = universe.faults();
  *num_faults = faults.size();
  *num_gates = nl.num_gates();

  // A fixed pseudo-random sequence, long enough that most batches run all
  // cycles (early exit only fires once every lane of a batch is detected).
  hlts::Rng rng(11);
  atpg::TestSequence seq;
  const int cycles = 2 * (r.exec_time + 1);
  for (int c = 0; c < cycles; ++c) {
    atpg::TestVector v(nl.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    if (c == 0 && !v.empty()) v[0] = true;  // reset
    seq.push_back(v);
  }

  std::vector<FaultSimSample> samples;
  std::vector<std::size_t> reference;  // width-64 serial detected set
  for (const int width : {64, 256, 512}) {
    atpg::FaultSimulator fsim(nl, /*num_threads=*/1, width);
    FaultSimSample s;
    s.width = width;
    std::vector<std::size_t> detected;
    std::uint64_t lane_evals = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t evals_before = fsim.gate_lane_evals();
      const auto t0 = std::chrono::steady_clock::now();
      detected = fsim.detected_by(seq, faults);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      lane_evals = fsim.gate_lane_evals() - evals_before;
      if (rep == 0 || ms < s.ms) s.ms = ms;
    }
    s.mgle_per_s =
        s.ms > 0 ? static_cast<double>(lane_evals) / (s.ms * 1e3) : 0;
    if (width == 64) reference = detected;
    s.identical = detected == reference;
    if (verify_serial) {
      atpg::FaultSimulator threaded(nl, /*num_threads=*/4, width);
      s.threads4_identical = threaded.detected_by(seq, faults) == reference;
    }
    if (!s.identical || !s.threads4_identical) ++*bad_configs;
    samples.push_back(s);
  }
  return samples;
}

// ---------------------------------------------------------------------------
// Deterministic-ATPG backends: full run_atpg under "timeframe" (random +
// PODEM) and "hybrid" (random + SAT on the survivors) over the same
// synthesized design, so the JSON tracks per-backend TG time and coverage.
// ---------------------------------------------------------------------------
struct AtpgBackendSample {
  std::string backend;
  double coverage = 0;
  double efficiency = 0;
  double tg_ms = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
  std::size_t unconfirmed = 0;
};

std::vector<AtpgBackendSample> atpg_backend_sweep(const hlts::dfg::Dfg& g,
                                                  bool* hybrid_ge_timeframe) {
  namespace atpg = hlts::atpg;
  hlts::core::FlowResult r =
      hlts::core::run_flow(hlts::core::FlowKind::Ours, g, {.bits = 8});
  hlts::rtl::RtlDesign design =
      hlts::rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  hlts::rtl::Elaboration elab = hlts::rtl::elaborate(design);

  std::vector<AtpgBackendSample> samples;
  for (const char* backend : {"timeframe", "hybrid"}) {
    atpg::AtpgOptions options;
    options.backend = backend;
    // The same modest per-fault budget the sat test suite uses: the hybrid
    // rescue pass preserves coverage dominance and the six-benchmark sweep
    // stays affordable in the perf-smoke job.
    options.sat_conflict_budget = 2000;
    const atpg::AtpgResult res =
        atpg::run_atpg(elab.netlist, design.steps() + 1, options);
    AtpgBackendSample s;
    s.backend = backend;
    s.coverage = res.fault_coverage;
    s.efficiency = res.fault_efficiency;
    s.tg_ms = res.tg_time_ms;
    s.detected = res.detected();
    s.untestable = res.untestable_proved;
    s.aborted = res.aborted;
    s.unconfirmed = res.unconfirmed;
    samples.push_back(std::move(s));
  }
  *hybrid_ge_timeframe = samples[1].coverage >= samples[0].coverage;
  return samples;
}

/// Pulls `"per_trial_us": <number>` for benchmark `name` out of a committed
/// BENCH_synthesis.json (crude scan; the file is machine-written).
double committed_per_trial_us(const std::string& json,
                              const std::string& name) {
  const std::string anchor = "\"name\": \"" + name + "\"";
  std::size_t at = json.find(anchor);
  if (at == std::string::npos) return 0;
  const std::string key = "\"per_trial_us\": ";
  at = json.find(key, at);
  if (at == std::string::npos) return 0;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_synthesis.json";
  int reps = 3;
  bool quick = false;
  bool verify_serial = false;
  std::string compare_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--compare" && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (positional == 0) {
      out_path = arg;
      ++positional;
    } else if (positional == 1) {
      reps = std::max(1, std::atoi(arg.c_str()));
      ++positional;
    }
  }
  if (quick) reps = 1;

  const std::size_t hw = hlts::util::ThreadPool::default_threads();
  std::vector<int> thread_configs{1, 2, 4, static_cast<int>(hw)};
  std::sort(thread_configs.begin(), thread_configs.end());
  thread_configs.erase(
      std::unique(thread_configs.begin(), thread_configs.end()),
      thread_configs.end());

  SynthesisParams common;
  common.bits = 8;
  common.k = 8;  // wider candidate fan-out than the paper tables' k=5,
                 // so each iteration has enough independent trials to fill
                 // the pool

  std::string committed;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    committed = buf.str();
    if (committed.empty()) {
      std::cerr << "WARNING: --compare " << compare_path
                << " unreadable or empty; skipping comparison\n";
    }
  }

  std::ostringstream json;
  json.precision(17);
  json << "{\n"
       << "  \"bench\": \"bench_synthesis_scale\",\n"
       << "  \"default_threads\": " << hw << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"params\": {\"bits\": " << common.bits << ", \"k\": " << common.k
       << "},\n"
       << "  \"benchmarks\": [\n";

  bool first_bench = true;
  int not_identical = 0;
  int regressions = 0;
  for (const char* name : {"ex", "dct", "diffeq", "ewf", "paulin", "tseng"}) {
    hlts::dfg::Dfg g = hlts::benchmarks::make_benchmark(name);

    // Seed-equivalent exact path: serial, no trial cache.
    SynthesisParams baseline = common;
    baseline.num_threads = 1;
    baseline.trial_cache = false;
    const ModeSample baseline_s = sample_mode(reps, g, baseline);

    // Serial reference for the bit-identity check of the sweep configs.
    SynthesisParams serial = common;
    serial.num_threads = 1;
    serial.trial_cache = true;
    const ModeSample serial_s = sample_mode(reps, g, serial);

    const double baseline_per_trial_us =
        baseline_s.trials > 0 ? baseline_s.ms * 1e3 / baseline_s.trials : 0;
    const double per_trial_us =
        serial_s.trials > 0 ? serial_s.ms * 1e3 / serial_s.trials : 0;

    SynthesisResult shape = hlts::core::integrated_synthesis(g, baseline);
    std::printf(
        "%-7s baseline (serial, no cache): %8.1f ms  (%zu mergers, "
        "%lld trials, %.1f us/trial)\n",
        name, baseline_s.ms, shape.trajectory.size(),
        static_cast<long long>(baseline_s.trials), baseline_per_trial_us);

    if (!first_bench) json << ",\n";
    first_bench = false;
    json << "    {\n"
         << "      \"name\": \"" << name << "\",\n"
         << "      \"mergers\": " << shape.trajectory.size() << ",\n"
         << "      \"baseline_serial_nocache_ms\": " << baseline_s.ms << ",\n"
         << "      \"baseline_trials\": " << baseline_s.trials << ",\n"
         << "      \"baseline_per_trial_us\": " << baseline_per_trial_us
         << ",\n"
         << "      \"trials\": " << serial_s.trials << ",\n"
         << "      \"per_trial_us\": " << per_trial_us << ",\n"
         << "      \"configs\": [\n";

    for (std::size_t ci = 0; ci < thread_configs.size(); ++ci) {
      const int threads = thread_configs[ci];
      SynthesisParams p = common;
      p.num_threads = threads;
      p.trial_cache = true;
      std::string sig;
      const double ms =
          threads == 1 ? serial_s.ms : best_of(reps, g, p, &sig);
      if (threads == 1) sig = serial_s.sig;
      const bool identical = sig == serial_s.sig;
      if (!identical) ++not_identical;
      const double speedup = ms > 0 ? baseline_s.ms / ms : 0;
      std::printf(
          "%-7s threads=%-2d cache=on: %8.1f ms   speedup vs baseline %.2fx"
          "   identical_to_serial=%s\n",
          name, threads, ms, speedup, identical ? "yes" : "NO");
      json << "        {\"threads\": " << threads << ", \"trial_cache\": true"
           << ", \"ms\": " << ms << ", \"speedup_vs_baseline\": " << speedup
           << ", \"identical_to_serial\": " << (identical ? "true" : "false")
           << "}" << (ci + 1 < thread_configs.size() ? "," : "") << "\n";
    }
    json << "      ],\n";

    // Incremental analysis layer vs full recompute, serial so the counter
    // ratio is exactly the dirty-cone saving per committed merger.
    SynthesisParams full_mode = common;
    full_mode.num_threads = 1;
    full_mode.trial_cache = true;
    full_mode.incremental = false;
    SynthesisParams inc_mode = full_mode;
    inc_mode.incremental = true;
    const ModeSample full_s = sample_mode(reps, g, full_mode);
    const ModeSample inc_s = sample_mode(reps, g, inc_mode);
    bool inc_identical = inc_s.sig == full_s.sig;
    if (verify_serial) {
      // Full matrix: threads {1,4} x incremental {on,off} all agree.
      for (const int threads : {1, 4}) {
        for (const bool incremental : {false, true}) {
          SynthesisParams p = full_mode;
          p.num_threads = threads;
          p.incremental = incremental;
          std::string sig;
          (void)best_of(1, g, p, &sig);
          if (sig != full_s.sig) inc_identical = false;
        }
      }
    }
    if (!inc_identical) ++not_identical;
    const double inc_speedup = inc_s.ms > 0 ? full_s.ms / inc_s.ms : 0;
    const double visit_ratio =
        inc_s.node_visits > 0
            ? static_cast<double>(full_s.node_visits) / inc_s.node_visits
            : 0;
    std::printf(
        "%-7s incremental: %8.1f ms vs full %8.1f ms (%.2fx); node visits "
        "%lld vs %lld (%.2fx fewer, %lld updates)  identical=%s\n",
        name, inc_s.ms, full_s.ms, inc_speedup,
        static_cast<long long>(inc_s.node_visits),
        static_cast<long long>(full_s.node_visits), visit_ratio,
        static_cast<long long>(inc_s.incremental_updates),
        inc_identical ? "yes" : "NO");
    json << "      \"incremental\": {\n"
         << "        \"full_ms\": " << full_s.ms << ",\n"
         << "        \"incremental_ms\": " << inc_s.ms << ",\n"
         << "        \"speedup_vs_full\": " << inc_speedup << ",\n"
         << "        \"node_visits_full\": " << full_s.node_visits << ",\n"
         << "        \"node_visits_incremental\": " << inc_s.node_visits
         << ",\n"
         << "        \"node_visit_reduction\": " << visit_ratio << ",\n"
         << "        \"incremental_updates\": " << inc_s.incremental_updates
         << ",\n"
         << "        \"identical_to_full\": "
         << (inc_identical ? "true" : "false") << "\n"
         << "      },\n";

    // Fault-sim throughput per packet width over the synthesized design.
    std::size_t num_faults = 0;
    std::size_t num_gates = 0;
    const std::vector<FaultSimSample> fsim_samples = fault_sim_sweep(
        g, reps, verify_serial, &num_faults, &num_gates, &not_identical);
    json << "      \"fault_sim\": {\n"
         << "        \"gates\": " << num_gates << ",\n"
         << "        \"faults\": " << num_faults << ",\n"
         << "        \"widths\": [\n";
    for (std::size_t wi = 0; wi < fsim_samples.size(); ++wi) {
      const FaultSimSample& s = fsim_samples[wi];
      std::printf(
          "%-7s fault-sim width=%-3d: %8.2f ms   %8.1f Mgate-lane-evals/s"
          "   identical=%s%s\n",
          name, s.width, s.ms, s.mgle_per_s, s.identical ? "yes" : "NO",
          verify_serial ? (s.threads4_identical ? " threads4=yes"
                                                : " threads4=NO")
                        : "");
      json << "          {\"width\": " << s.width << ", \"ms\": " << s.ms
           << ", \"mgate_lane_evals_per_s\": " << s.mgle_per_s
           << ", \"identical\": " << (s.identical ? "true" : "false")
           << ", \"threads4_identical\": "
           << (s.threads4_identical ? "true" : "false") << "}"
           << (wi + 1 < fsim_samples.size() ? "," : "") << "\n";
    }
    json << "        ]\n      },\n";

    // Deterministic-ATPG backend comparison on the same design: the hybrid
    // (random + SAT) mode must cover at least what the timeframe (random +
    // PODEM) mode covers -- SAT is complete within the shared frame bound
    // where PODEM's bounded backtracking aborts.
    bool hybrid_ge_timeframe = true;
    const std::vector<AtpgBackendSample> atpg_samples =
        atpg_backend_sweep(g, &hybrid_ge_timeframe);
    if (!hybrid_ge_timeframe) ++not_identical;
    json << "      \"atpg_backends\": [\n";
    for (std::size_t ai = 0; ai < atpg_samples.size(); ++ai) {
      const AtpgBackendSample& s = atpg_samples[ai];
      std::printf(
          "%-7s atpg backend=%-9s: coverage %6.2f%%  efficiency %6.2f%%  "
          "tg %7.1f ms  untestable %zu  aborted %zu%s\n",
          name, s.backend.c_str(), 100 * s.coverage, 100 * s.efficiency,
          s.tg_ms, s.untestable, s.aborted,
          s.backend == "hybrid"
              ? (hybrid_ge_timeframe ? "  >=timeframe=yes" : "  >=timeframe=NO")
              : "");
      json << "        {\"backend\": \"" << s.backend << "\""
           << ", \"fault_coverage\": " << s.coverage
           << ", \"fault_efficiency\": " << s.efficiency
           << ", \"tg_ms\": " << s.tg_ms
           << ", \"detected\": " << s.detected
           << ", \"untestable\": " << s.untestable
           << ", \"aborted\": " << s.aborted
           << ", \"unconfirmed\": " << s.unconfirmed;
      if (s.backend == "hybrid") {
        json << ", \"coverage_ge_timeframe\": "
             << (hybrid_ge_timeframe ? "true" : "false");
      }
      json << "}" << (ai + 1 < atpg_samples.size() ? "," : "") << "\n";
    }
    json << "      ]\n    }";

    if (!committed.empty()) {
      const double old_us = committed_per_trial_us(committed, name);
      if (old_us > 0 && per_trial_us > old_us * 1.2) {
        ++regressions;
        std::fprintf(stderr,
                     "WARNING: %s per-trial time regressed %.1f -> %.1f us "
                     "(>20%% vs %s)\n",
                     name, old_us, per_trial_us, compare_path.c_str());
      }
    }
  }
  json << "\n  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  if (!out) {
    std::cerr << "ERROR: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  if (regressions > 0) {
    std::cerr << "WARNING: " << regressions
              << " benchmark(s) regressed >20% on per-trial time "
                 "(non-gating)\n";
  }
  if (not_identical > 0) {
    std::cerr << "ERROR: " << not_identical
              << " config(s) diverged from the serial reference\n";
    return 1;
  }
  return 0;
}
