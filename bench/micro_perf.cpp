// google-benchmark micro-benchmarks for the analysis/simulation kernels:
// testability fixpoint, Petri-net reachability + critical path, netlist
// simplification, parallel fault simulation, and one full Algorithm 1 run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "etpn/patch.hpp"
#include "gates/simplify.hpp"
#include "petri/petri.hpp"
#include "rtl/elaborate.hpp"
#include "sched/schedule.hpp"
#include "testability/testability.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Heap-allocation counter (configure with -DHLTS_COUNT_ALLOCS=ON).
//
// Replaces the global operator new/delete pair with counting wrappers so the
// trial-inner-loop benchmarks below can assert their zero-allocation
// contract: after warm-up, a merge-patch apply/revert cycle and a
// testability cone update must perform no heap allocations at all (the
// workspace arena and reusable member scratch absorb everything).  Reported
// as the `allocs_per_iter` counter; without the option the counter is
// absent and the hooks compile away.
// ---------------------------------------------------------------------------
#ifdef HLTS_COUNT_ALLOCS

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // HLTS_COUNT_ALLOCS

namespace {

using namespace hlts;

std::uint64_t alloc_count() {
#ifdef HLTS_COUNT_ALLOCS
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void report_allocs(benchmark::State& state, std::uint64_t before) {
#ifdef HLTS_COUNT_ALLOCS
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_count() - before),
      benchmark::Counter::kAvgIterations);
#else
  (void)state;
  (void)before;
#endif
}

void BM_TestabilityFixpoint(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ewf();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  for (auto _ : state) {
    testability::TestabilityAnalysis analysis(e.data_path);
    benchmark::DoNotOptimize(analysis.balance_index());
  }
}
BENCHMARK(BM_TestabilityFixpoint);

void BM_ReachabilityTree(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_diffeq();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b, {.loop_on_condition = true});
  for (auto _ : state) {
    petri::ReachabilityTree tree(e.control);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_ReachabilityTree);

void BM_CriticalPath(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ewf();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(petri::critical_path(e.control).length);
  }
}
BENCHMARK(BM_CriticalPath);

void BM_Simplify(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_diffeq();
  core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  // Re-elaborate inside the loop would double-simplify; measure on the raw
  // netlist by re-running elaborate's core via from-scratch design.
  for (auto _ : state) {
    rtl::Elaboration e = rtl::elaborate(design);
    benchmark::DoNotOptimize(e.netlist.num_gates());
  }
}
BENCHMARK(BM_Simplify);

void BM_FaultSimulation(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  rtl::Elaboration elab = rtl::elaborate(design);
  atpg::FaultUniverse universe = atpg::FaultUniverse::collapsed(elab.netlist);
  std::vector<atpg::Fault> faults = universe.faults();
  Rng rng(7);
  atpg::TestSequence seq;
  for (int c = 0; c < 12; ++c) {
    atpg::TestVector v(elab.netlist.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    if (c == 0) v[0] = true;  // reset
    seq.push_back(v);
  }
  atpg::FaultSimulator fsim(elab.netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detected_by(seq, faults).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_FaultSimulation);

/// Steady-state trial inner loop: apply one merge patch onto the SoA data
/// path and revert it, with the undo log carved from a reused arena.
/// Contract: zero heap allocations per iteration after warm-up.
void BM_MergePatchRevert(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ewf();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  etpn::DataPath& dp = e.data_path;

  // Merge the first two alive module nodes -- structurally representative
  // of what every Algorithm 1 trial does.
  etpn::DpNodeId into = etpn::DpNodeId::invalid();
  etpn::DpNodeId from = etpn::DpNodeId::invalid();
  for (etpn::DpNodeId n : dp.node_ids()) {
    if (!dp.alive(n) || dp.node(n).kind != etpn::DpNodeKind::Module) continue;
    if (!into.valid()) {
      into = n;
    } else {
      from = n;
      break;
    }
  }

  util::Arena arena;
  {
    // Warm-up: grow the arena blocks and the pool tail slack once.
    etpn::MergePatch p = etpn::apply_merge_patch(dp, arena, into, from);
    etpn::revert_merge_patch(dp, p);
    arena.reset();
  }
  const std::uint64_t before = alloc_count();
  for (auto _ : state) {
    etpn::MergePatch p = etpn::apply_merge_patch(dp, arena, into, from);
    etpn::revert_merge_patch(dp, p);
    arena.reset();
    benchmark::DoNotOptimize(p.arcs_deduped);
  }
  report_allocs(state, before);
}
BENCHMARK(BM_MergePatchRevert);

/// Steady-state incremental testability cone update on the persistent
/// fixpoint.  Contract: zero heap allocations per iteration after warm-up
/// (member scratch and the pooled trajectory storage absorb everything,
/// including the periodic history compaction).
void BM_TestabilityUpdate(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ewf();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);

  etpn::DpNodeId seed = etpn::DpNodeId::invalid();
  for (etpn::DpNodeId n : e.data_path.node_ids()) {
    if (e.data_path.alive(n) &&
        e.data_path.node(n).kind == etpn::DpNodeKind::Module) {
      seed = n;
      break;
    }
  }

  testability::TestabilityAnalysis analysis(e.data_path);
  const std::vector<etpn::DpNodeId> changed = {seed};
  // Warm-up past the first few history compactions so the pooled trajectory
  // storage and its compaction scratch reach their plateau capacities.
  for (int i = 0; i < 512; ++i) {
    benchmark::DoNotOptimize(analysis.update(changed).node_visits);
  }
  const std::uint64_t before = alloc_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.update(changed).node_visits);
  }
  report_allocs(state, before);
}
BENCHMARK(BM_TestabilityUpdate);

void BM_IntegratedSynthesis(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_diffeq();
  for (auto _ : state) {
    core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
    benchmark::DoNotOptimize(r.registers);
  }
}
BENCHMARK(BM_IntegratedSynthesis);

}  // namespace

BENCHMARK_MAIN();
