// google-benchmark micro-benchmarks for the analysis/simulation kernels:
// testability fixpoint, Petri-net reachability + critical path, netlist
// simplification, parallel fault simulation, and one full Algorithm 1 run.
#include <benchmark/benchmark.h>

#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "gates/simplify.hpp"
#include "petri/petri.hpp"
#include "rtl/elaborate.hpp"
#include "sched/schedule.hpp"
#include "testability/testability.hpp"
#include "util/rng.hpp"

namespace {

using namespace hlts;

void BM_TestabilityFixpoint(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ewf();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  for (auto _ : state) {
    testability::TestabilityAnalysis analysis(e.data_path);
    benchmark::DoNotOptimize(analysis.balance_index());
  }
}
BENCHMARK(BM_TestabilityFixpoint);

void BM_ReachabilityTree(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_diffeq();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b, {.loop_on_condition = true});
  for (auto _ : state) {
    petri::ReachabilityTree tree(e.control);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_ReachabilityTree);

void BM_CriticalPath(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ewf();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(petri::critical_path(e.control).length);
  }
}
BENCHMARK(BM_CriticalPath);

void BM_Simplify(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_diffeq();
  core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  // Re-elaborate inside the loop would double-simplify; measure on the raw
  // netlist by re-running elaborate's core via from-scratch design.
  for (auto _ : state) {
    rtl::Elaboration e = rtl::elaborate(design);
    benchmark::DoNotOptimize(e.netlist.num_gates());
  }
}
BENCHMARK(BM_Simplify);

void BM_FaultSimulation(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  rtl::Elaboration elab = rtl::elaborate(design);
  atpg::FaultUniverse universe = atpg::FaultUniverse::collapsed(elab.netlist);
  std::vector<atpg::Fault> faults = universe.faults();
  Rng rng(7);
  atpg::TestSequence seq;
  for (int c = 0; c < 12; ++c) {
    atpg::TestVector v(elab.netlist.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    if (c == 0) v[0] = true;  // reset
    seq.push_back(v);
  }
  atpg::FaultSimulator fsim(elab.netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detected_by(seq, faults).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_FaultSimulation);

void BM_IntegratedSynthesis(benchmark::State& state) {
  dfg::Dfg g = benchmarks::make_diffeq();
  for (auto _ : state) {
    core::FlowResult r = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
    benchmark::DoNotOptimize(r.registers);
  }
}
BENCHMARK(BM_IntegratedSynthesis);

}  // namespace

BENCHMARK_MAIN();
