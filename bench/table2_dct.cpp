// Regenerates Table 2: experimental results on the area-optimized Dct
// benchmark (adds the hardware-cost/area column).
//
//   ./table2_dct [num_seeds]
#include <cstdlib>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;
  hlts::dfg::Dfg g = hlts::benchmarks::make_dct();
  hlts::bench::run_paper_table(
      "Table 2: experimental results on the area-optimized Dct benchmark", g,
      /*include_area=*/true, seeds);
  return 0;
}
