// Shared driver for the table benches: run a synthesis flow, elaborate to
// gates, run the bounded-effort ATPG over several seeds, and average the
// paper's three test metrics.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "core/flows.hpp"
#include "dfg/dfg.hpp"
#include "report/table.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"

namespace hlts::bench {

/// The Algorithm-1 parameters used for the paper-table benches.
///
/// The paper reports (k, alpha, beta) = (3,2,1) / (3,10,1) / (3,1,10) for
/// its 4/8/16-bit runs and notes "the chosen parameters do not influence so
/// much the final results".  Those triples are tied to the original
/// implementation's cost units; in our units (dE in control steps, dH in
/// 0.01 mm^2) the equivalent emphasis is (5, 2, 1), which reproduces the
/// paper's reported Ex/Diffeq allocations and is used at every width.  The
/// ablation_kab bench sweeps the parameters to test the insensitivity
/// claim.
inline core::FlowParams paper_params(int bits) {
  core::FlowParams p;
  p.bits = bits;
  p.k = 5;
  p.alpha = 2;
  p.beta = 1;
  return p;
}

/// Seed-averaged ATPG metrics for one synthesized design.
struct TestMetrics {
  double coverage = 0;
  double tg_time_ms = 0;
  double test_cycles = 0;
  std::size_t faults = 0;
  std::size_t gate_count = 0;
};

inline TestMetrics evaluate_testability(const dfg::Dfg& g,
                                        const core::FlowResult& flow, int bits,
                                        int num_seeds,
                                        const atpg::AtpgOptions& base = {}) {
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, bits);
  rtl::Elaboration elab = rtl::elaborate(design);
  TestMetrics m;
  m.gate_count = elab.netlist.stats().gates;
  for (int s = 0; s < num_seeds; ++s) {
    atpg::AtpgOptions options = base;
    options.seed = base.seed + static_cast<std::uint64_t>(s) * 7919;
    atpg::AtpgResult r =
        atpg::run_atpg(elab.netlist, design.steps() + 1, options);
    m.coverage += r.fault_coverage;
    m.tg_time_ms += r.tg_time_ms;
    m.test_cycles += static_cast<double>(r.test_cycles);
    m.faults = r.total_faults;
  }
  m.coverage /= num_seeds;
  m.tg_time_ms /= num_seeds;
  m.test_cycles /= num_seeds;
  return m;
}

/// Renders one paper-style table (Tables 1-3): four flows x three widths.
inline void run_paper_table(const std::string& title, const dfg::Dfg& g,
                            bool include_area, int num_seeds) {
  std::vector<std::string> header{"Synthesis", "Module allocation",
                                  "Register allocation", "#Mux", "#Bit",
                                  "Fault coverage", "TG time (ms)",
                                  "Test cycles"};
  if (include_area) header.push_back("Area (mm^2)");
  report::Table table(header);

  bool first_flow = true;
  for (core::FlowKind kind :
       {core::FlowKind::Camad, core::FlowKind::Approach1,
        core::FlowKind::Approach2, core::FlowKind::Ours}) {
    if (!first_flow) table.add_separator();
    first_flow = false;
    bool first_width = true;
    for (int bits : {4, 8, 16}) {
      core::FlowParams params = paper_params(bits);
      core::FlowResult flow = core::run_flow(kind, g, params);
      TestMetrics m = evaluate_testability(g, flow, bits, num_seeds);

      std::vector<std::string> row;
      row.push_back(first_width ? flow.name : "");
      // The allocation columns describe the (width-independent) structure;
      // print them on the first width row only, like the paper does.
      std::string mods;
      std::string regs;
      if (first_width) {
        for (const auto& s : flow.module_allocation) {
          mods += (mods.empty() ? "" : "; ") + s;
        }
        for (const auto& s : flow.register_allocation) {
          regs += (regs.empty() ? "" : "; ") + s;
        }
      }
      row.push_back(mods);
      row.push_back(regs);
      row.push_back(first_width ? report::fmt_int(flow.muxes) : "");
      row.push_back(report::fmt_int(bits));
      row.push_back(report::fmt_percent(m.coverage));
      row.push_back(report::fmt_double(m.tg_time_ms, 1));
      row.push_back(report::fmt_int(static_cast<long>(m.test_cycles)));
      if (include_area) {
        row.push_back(report::fmt_double(flow.cost.total(), 3));
      }
      table.add_row(std::move(row));
      first_width = false;
    }
  }
  std::cout << title << "\n" << table.render() << "\n";
}

}  // namespace hlts::bench
