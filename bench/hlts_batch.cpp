// Batch driver for the paper's full evaluation grid: the four benchmarks of
// §5 (Ex, DCT, Diffeq, EWF) x the four synthesis flows, run concurrently
// through engine::Engine and written out as one machine-readable JSON
// report (per-job results, per-job trace spans/counters, engine metrics).
//
//   hlts_batch [--jobs N] [--threads N] [--bits N] [--out FILE]
//              [--verify-serial] [--inject SPEC]
//              [--journal-dir DIR] [--checkpoint-every N] [--kill-after N]
//              [--recover] [--queue-cap N] [--policy block|reject|shed]
//              [--atpg-backend timeframe|sat|hybrid] [--dump-cnf DIR]
//
// --jobs / --threads control the engine's two-level split (0 = auto);
// --verify-serial re-runs every job through a direct core::run_flow call
// and checks the engine result is bit-identical (exit 1 on any mismatch).
//
// --atpg-backend enables a post-synthesis testability evaluation: every
// job that completed Full is elaborated to gates and run through ATPG
// under the named deterministic backend (atpg/atpg.hpp documents the
// modes); per-job coverage/efficiency/TG-time land in the report's "atpg"
// block.  --dump-cnf DIR makes the SAT backend write each target's CNF as
// DIMACS (with a comment-line variable map) into DIR.
//
// --inject SPEC is the fault-injection soak: SPEC is the HLTS_FAILPOINTS
// grammar (site:mode:probability:seed[:param], comma-separated; see
// util/failpoint.hpp).  Faults are injected across the whole grid; the run
// must not crash or hang, every job must reach a terminal state, and with
// --verify-serial the jobs that still completed Full are checked
// bit-identical to serial runs (jobs degraded to Partial checkpoints by an
// injected fault are reported but not compared).  Injected failures do not
// fail the exit code; crashes, hangs, and verify mismatches do.
//
// Durability soak: --journal-dir enables the engine's write-ahead journal
// (checkpoints every --checkpoint-every committed mergers, default 1);
// --kill-after N _exit(137)s the process at the N-th checkpoint
// persistence (shorthand for --inject journal.checkpoint:kill:1:0:N); a
// second invocation with --recover replays the interrupted directory
// through Engine::recover instead of submitting a fresh grid, and
// --verify-serial then checks the recovered results are bit-identical to
// uninterrupted runs:
//
//   hlts_batch --journal-dir /tmp/j --kill-after 3   # dies at 137
//   hlts_batch --journal-dir /tmp/j --recover --verify-serial
//
// Overload soak: --queue-cap bounds the pending queue and --policy picks
// the admission policy; shed/rejected jobs count as expected outcomes (not
// failures) and the engine health snapshot lands in the report.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "engine/engine.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

#include "bench_common.hpp"

namespace {

using namespace hlts;

/// Bit-identical comparison through the wire DTO (the engine's determinism
/// contract: same schedule, binding-derived counts, and cost bit patterns).
/// Routing the check through api::FlowResultV1 also proves the DTO carries
/// every field the contract compares.
bool identical(const core::FlowResult& a, const api::FlowResultV1& b) {
  return api::FlowResultV1::from_result(b.name, a).design_identical(b);
}

void write_snapshot(util::JsonWriter& w, const util::TraceSnapshot& snap) {
  w.begin_object();
  w.key("spans").begin_array();
  for (const util::SpanRecord& s : snap.spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("start_us").value(static_cast<std::int64_t>(s.start_us));
    w.key("dur_us").value(static_cast<std::int64_t>(s.dur_us));
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--jobs N] [--threads N] [--bits N] [--out FILE]"
               " [--verify-serial] [--inject SPEC]"
               " [--journal-dir DIR] [--checkpoint-every N] [--kill-after N]"
               " [--recover] [--queue-cap N] [--policy block|reject|shed]"
               " [--atpg-backend timeframe|sat|hybrid] [--dump-cnf DIR]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;
  int threads = 0;
  int bits = 8;
  std::string out_path = "hlts_batch_report.json";
  bool verify_serial = false;
  std::string inject;
  std::string journal_dir;
  int checkpoint_every = 1;
  int kill_after = 0;
  bool recover = false;
  int queue_cap = -1;  // -1 = unbounded
  engine::OverloadPolicy policy = engine::OverloadPolicy::Block;
  std::string atpg_backend;  // empty = no post-synthesis ATPG evaluation
  std::string dump_cnf;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& dst) {
      if (i + 1 >= argc) return false;
      try {
        dst = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << arg << ": expected a number, got '" << argv[i] << "'\n";
        return false;
      }
      return true;
    };
    if (arg == "--jobs") {
      if (!next_int(jobs)) return usage(argv[0]);
    } else if (arg == "--threads") {
      if (!next_int(threads)) return usage(argv[0]);
    } else if (arg == "--bits") {
      if (!next_int(bits)) return usage(argv[0]);
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--inject") {
      if (i + 1 >= argc) return usage(argv[0]);
      inject = argv[++i];
    } else if (arg == "--journal-dir") {
      if (i + 1 >= argc) return usage(argv[0]);
      journal_dir = argv[++i];
    } else if (arg == "--checkpoint-every") {
      if (!next_int(checkpoint_every)) return usage(argv[0]);
    } else if (arg == "--kill-after") {
      if (!next_int(kill_after)) return usage(argv[0]);
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--queue-cap") {
      if (!next_int(queue_cap)) return usage(argv[0]);
    } else if (arg == "--policy") {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string name = argv[++i];
      if (name == "block") {
        policy = engine::OverloadPolicy::Block;
      } else if (name == "reject") {
        policy = engine::OverloadPolicy::Reject;
      } else if (name == "shed") {
        policy = engine::OverloadPolicy::ShedOldest;
      } else {
        std::cerr << "--policy: unknown policy '" << name << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--atpg-backend") {
      if (i + 1 >= argc) return usage(argv[0]);
      atpg_backend = argv[++i];
      if (atpg_backend != "timeframe" && atpg_backend != "sat" &&
          atpg_backend != "hybrid") {
        std::cerr << "--atpg-backend: unknown backend '" << atpg_backend
                  << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--dump-cnf") {
      if (i + 1 >= argc) return usage(argv[0]);
      dump_cnf = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!dump_cnf.empty() && atpg_backend.empty()) {
    std::cerr << "--dump-cnf requires --atpg-backend sat or hybrid\n";
    return usage(argv[0]);
  }
  if ((kill_after > 0 || recover) && journal_dir.empty()) {
    std::cerr << "--kill-after/--recover require --journal-dir\n";
    return usage(argv[0]);
  }
  if (kill_after > 0) {
    // Shorthand for the crash soak: die inside the kill_after-th checkpoint
    // persistence, leaving a journal a --recover run replays.
    if (!inject.empty()) inject += ",";
    inject += "journal.checkpoint:kill:1:0:" + std::to_string(kill_after);
  }

  if (!inject.empty()) {
    std::string error;
    if (!util::failpoint::configure(inject, &error)) {
      std::cerr << "--inject: " << error << "\n";
      return 2;
    }
  }

  const std::vector<std::string> bench_names = {"ex", "dct", "diffeq", "ewf"};
  const std::vector<core::FlowKind> kinds = {
      core::FlowKind::Camad, core::FlowKind::Approach1,
      core::FlowKind::Approach2, core::FlowKind::Ours};

  struct JobMeta {
    std::string benchmark;
    core::FlowKind kind;
    dfg::Dfg dfg;
    bool known = true;  ///< benchmark resolvable (verify only known jobs)
  };
  std::vector<JobMeta> meta;
  std::vector<api::FlowRequestV1> requests;
  if (!recover) {
    for (const std::string& bench : bench_names) {
      dfg::Dfg g = benchmarks::make_benchmark(bench);
      for (core::FlowKind kind : kinds) {
        api::FlowRequestV1 r;
        r.name = bench + "/" + core::flow_name(kind);
        r.kind = kind;
        r.dfg = g;
        r.params = bench::paper_params(bits);
        // Journaled with the request, so a --recover replay re-evaluates
        // testability under the same backend.
        r.params.atpg_backend = atpg_backend;
        requests.push_back(std::move(r));
        meta.push_back({bench, kind, g, true});
      }
    }
  }

  engine::EngineOptions eopts;
  eopts.max_concurrent_jobs = jobs;
  eopts.threads_per_job = threads;
  eopts.journal_dir = journal_dir;
  eopts.checkpoint_every = checkpoint_every;
  if (queue_cap >= 0) {
    eopts.queue_capacity = static_cast<std::size_t>(queue_cap);
  }
  eopts.overload_policy = policy;
  engine::Engine eng(eopts);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<engine::JobPtr> handles;
  if (recover) {
    // Replay an interrupted journal instead of submitting a fresh grid.
    engine::Engine::RecoveryReport rep = eng.recover(journal_dir);
    for (const std::string& e : rep.errors) {
      std::cerr << "recover: " << e << "\n";
    }
    handles = std::move(rep.jobs);
    for (const engine::JobPtr& job : handles) {
      const std::string bench = job->name().substr(0, job->name().find('/'));
      const bool known = std::find(bench_names.begin(), bench_names.end(),
                                   bench) != bench_names.end();
      meta.push_back({bench, job->kind(),
                      known ? benchmarks::make_benchmark(bench)
                            : dfg::Dfg(bench),
                      known});
    }
    std::cout << "hlts_batch: recovered " << handles.size()
              << " unfinished job(s) from " << journal_dir << "\n";
  } else {
    std::cout << "hlts_batch: " << requests.size() << " jobs ("
              << bench_names.size() << " benchmarks x " << kinds.size()
              << " flows), " << eng.max_concurrent_jobs() << " concurrent x "
              << eng.threads_per_job() << " trial threads, " << bits
              << "-bit datapath\n";
    handles.reserve(requests.size());
    for (const api::FlowRequestV1& r : requests) {
      try {
        handles.push_back(eng.submit(r));
      } catch (const Error& e) {
        // Write-ahead journaling refuses the submission (no side effects)
        // when the journal append hits a transient fs error -- e.g. an
        // ENOSPC injected via HLTS_IO_FAULTS.  Report and move on; a
        // non-transient error is a real bug and still propagates.
        if (e.kind() != ErrorKind::Transient) throw;
        std::cerr << "hlts_batch: submission refused: " << e.what() << "\n";
      }
    }
  }
  eng.wait_all();
  // Snapshot the injection statistics, then disarm: the --verify-serial
  // reference runs below must be fault-free baselines, and an injected
  // exception thrown here in main() would otherwise escape uncaught.
  const std::vector<util::failpoint::SiteStats> fp_stats =
      util::failpoint::stats();
  util::failpoint::clear();
  const double total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  int failures = 0;
  int mismatches = 0;
  int partials = 0;
  int shed = 0;
  util::JsonWriter w;
  w.begin_object();
  w.key("config").begin_object();
  w.key("jobs").value(eng.max_concurrent_jobs());
  w.key("threads_per_job").value(eng.threads_per_job());
  w.key("bits").value(bits);
  w.key("verify_serial").value(verify_serial);
  w.key("inject").value(inject);
  w.key("journal_dir").value(journal_dir);
  w.key("recover").value(recover);
  w.key("queue_cap").value(queue_cap);
  w.key("policy").value(engine::overload_policy_name(policy));
  w.key("atpg_backend").value(atpg_backend);
  w.key("dump_cnf").value(dump_cnf);
  w.end_object();
  w.key("jobs").begin_array();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const engine::JobPtr& job = handles[i];
    // Everything the report says about a job flows through the versioned
    // DTO -- the same record the wire protocol and the journal carry.
    const api::FlowResultV1 res = engine::job_result_to_api(*job);
    w.begin_object();
    w.key("name").value(res.name);
    w.key("benchmark").value(meta[i].benchmark);
    w.key("flow").value(core::flow_name(meta[i].kind));
    w.key("state").value(res.state);
    w.key("wall_ms").value(res.wall_ms);
    w.key("attempts").value(job->attempts());
    w.key("stalled").value(job->stalled());
    // Cancelled/TimedOut (and degraded-Partial Succeeded) jobs still carry
    // their best checkpoint: report it wherever it exists.
    if (res.has_design) {
      w.key("completeness").value(res.completeness);
      w.key("stop_reason").value(res.stop_reason);
      w.key("iterations").value(res.iterations);
      w.key("result").begin_object();
      w.key("exec_time").value(res.exec_time);
      w.key("registers").value(res.registers);
      w.key("modules").value(res.modules);
      w.key("muxes").value(res.muxes);
      w.key("self_loops").value(res.self_loops);
      w.key("area").value(res.area);
      w.key("balance_index").value(res.balance_index);
      w.key("module_allocation").begin_array();
      for (const std::string& s : res.module_allocation) w.value(s);
      w.end_array();
      w.key("register_allocation").begin_array();
      for (const std::string& s : res.register_allocation) w.value(s);
      w.end_array();
      w.end_object();
      if (res.completeness ==
          core::completeness_name(core::Completeness::Partial)) {
        ++partials;
      }
      // The determinism contract only covers complete runs: a job degraded
      // to a Partial checkpoint by an injected fault stops at an earlier
      // iteration than the fault-free serial reference.
      // (Recovered jobs are verified against the same --bits the original
      // run used; pass the matching --bits on the --recover invocation.)
      if (verify_serial && meta[i].known &&
          job->state() == engine::JobState::Succeeded &&
          res.completeness ==
              core::completeness_name(core::Completeness::Full)) {
        const core::FlowParams params = bench::paper_params(bits);
        core::FlowResult serial =
            core::run_flow(meta[i].kind, meta[i].dfg, params);
        // Cross-check the incremental analysis layer against its
        // from-scratch reference: the same serial flow with the opposite
        // `incremental` setting must produce the same bits (the
        // HLTS_INCREMENTAL contract).
        core::FlowParams flipped = params;
        flipped.incremental = !params.incremental;
        core::FlowResult other =
            core::run_flow(meta[i].kind, meta[i].dfg, flipped);
        const bool same_serial = identical(serial, res);
        const bool same_flipped = identical(other, res);
        w.key("verify").value(same_serial && same_flipped ? "identical"
                                                          : "mismatch");
        if (!same_serial) {
          ++mismatches;
          std::cerr << "MISMATCH vs serial run_flow: " << res.name << "\n";
        }
        if (!same_flipped) {
          ++mismatches;
          std::cerr << "MISMATCH incremental vs full recompute: " << res.name
                    << "\n";
        }
      }
    }
    // Post-synthesis testability evaluation under the selected backend.
    // Full results only: a Partial checkpoint's coverage would not be
    // comparable across runs.  The backend comes from the job's own
    // (journaled) parameters, so a --recover replay re-evaluates under
    // whatever backend the interrupted run selected.
    const std::string& job_backend = job->params().atpg_backend;
    if (!job_backend.empty() && meta[i].known &&
        job->state() == engine::JobState::Succeeded && res.has_design &&
        res.completeness ==
            core::completeness_name(core::Completeness::Full) &&
        job->result().has_value()) {
      const core::FlowResult& fr = *job->result();
      rtl::RtlDesign design = rtl::RtlDesign::from_synthesis(
          meta[i].dfg, fr.schedule, fr.binding, bits);
      rtl::Elaboration elab = rtl::elaborate(design);
      atpg::AtpgOptions ao;
      ao.backend = job_backend;
      ao.sat_frames = job->params().sat_frames;
      ao.sat_conflict_budget = job->params().sat_conflict_budget;
      ao.dump_cnf_dir = dump_cnf;
      const atpg::AtpgResult ar =
          atpg::run_atpg(elab.netlist, design.steps() + 1, ao);
      w.key("atpg").begin_object();
      w.key("backend").value(ar.backend);
      w.key("total_faults").value(static_cast<std::int64_t>(ar.total_faults));
      w.key("detected").value(static_cast<std::int64_t>(ar.detected()));
      w.key("detected_random")
          .value(static_cast<std::int64_t>(ar.detected_random));
      w.key("detected_deterministic")
          .value(static_cast<std::int64_t>(ar.detected_deterministic));
      w.key("untestable_proved")
          .value(static_cast<std::int64_t>(ar.untestable_proved));
      w.key("aborted").value(static_cast<std::int64_t>(ar.aborted));
      w.key("unconfirmed").value(static_cast<std::int64_t>(ar.unconfirmed));
      w.key("fault_coverage").value(ar.fault_coverage);
      w.key("fault_efficiency").value(ar.fault_efficiency);
      w.key("tg_time_ms").value(ar.tg_time_ms);
      w.key("test_cycles").value(ar.test_cycles);
      w.end_object();
    }
    if (job->state() == engine::JobState::Rejected) {
      // Shed/rejected under an explicit queue bound is the admission
      // policy working as configured, not a job failure.
      ++shed;
      w.key("error").value(res.error);
    } else if (job->state() != engine::JobState::Succeeded) {
      ++failures;
      w.key("error").value(res.error);
      std::cerr << "job " << res.name << " " << res.state << ": " << res.error
                << "\n";
    }
    w.key("trace");
    write_snapshot(w, job->trace());
    w.end_object();
  }
  w.end_array();
  w.key("engine");
  write_snapshot(w, eng.metrics());
  // The health block is the same api::HealthV1 document a serving shard
  // reports (shard 0: a batch run is a single-shard cluster).
  w.key("health").raw_value(util::json_dump(eng.health().to_api(0).to_json()));
  if (!inject.empty()) {
    w.key("failpoints").begin_array();
    for (const util::failpoint::SiteStats& s : fp_stats) {
      w.begin_object();
      w.key("site").value(s.site);
      w.key("hits").value(s.hits);
      w.key("triggers").value(s.triggers);
      w.end_object();
    }
    w.end_array();
  }
  w.key("wall_ms_total").value(total_ms);
  w.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << w.str() << "\n";

  std::cout << "hlts_batch: " << handles.size() - failures - shed << "/"
            << handles.size() << " jobs succeeded in " << total_ms
            << " ms; report: " << out_path << "\n";
  if (shed > 0) {
    std::cout << "hlts_batch: " << shed
              << " job(s) shed/rejected by admission control\n";
  }
  if (partials > 0) {
    std::cout << "hlts_batch: " << partials
              << " job(s) returned Partial checkpoints\n";
  }
  if (verify_serial) {
    std::cout << "hlts_batch: serial verification "
              << (mismatches == 0 ? "passed (all bit-identical)"
                                  : "FAILED")
              << "\n";
  }
  // Under injection, individual job failures are the *expected* outcome of
  // the injected faults; the soak passes as long as nothing crashed or
  // hung and the surviving Full results verified.
  const bool jobs_ok = failures == 0 || !inject.empty();
  return (jobs_ok && mismatches == 0) ? 0 : 1;
}
