// Ablation of the two design choices Algorithm 1 adds over a conventional
// transformational flow:
//   - candidate selection: C/O balance principle vs connectivity/closeness,
//   - rescheduling order: SR1/SR2 testability strategy vs plain order.
// 2x2 on the three table benchmarks; reports structure metrics and the
// bounded-effort ATPG coverage.
#include <iostream>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/synthesis.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;

  report::Table table({"benchmark", "selection", "order", "steps", "regs",
                       "muxes", "self-loops", "balance", "coverage",
                       "tg (ms)"});
  for (const char* name : {"ex", "dct", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    for (auto policy : {core::SelectionPolicy::BalanceTestability,
                        core::SelectionPolicy::Connectivity}) {
      for (auto order :
           {core::OrderStrategy::Testability, core::OrderStrategy::Plain}) {
        core::SynthesisParams p;
        p.bits = 8;
        p.k = 5;
        p.alpha = 10;
        p.beta = 1;
        p.policy = policy;
        p.order = order;
        core::SynthesisResult s = core::integrated_synthesis(g, p);

        etpn::Etpn e = etpn::build_etpn(g, s.schedule, s.binding);
        testability::TestabilityAnalysis analysis(e.data_path);

        core::FlowResult flow;
        flow.schedule = s.schedule;
        flow.binding = s.binding;
        bench::TestMetrics m =
            bench::evaluate_testability(g, flow, p.bits, seeds);

        table.add_row(
            {name,
             policy == core::SelectionPolicy::BalanceTestability
                 ? "balance"
                 : "connectivity",
             order == core::OrderStrategy::Testability ? "SR1/SR2" : "plain",
             report::fmt_int(s.schedule.length()),
             report::fmt_int(s.binding.num_alive_regs()),
             report::fmt_int(e.data_path.mux_count()),
             report::fmt_int(e.data_path.self_loop_count()),
             report::fmt_double(analysis.balance_index(), 3),
             report::fmt_percent(m.coverage), report::fmt_double(m.tg_time_ms, 1)});
      }
    }
    table.add_separator();
  }
  std::cout << "Ablation: balance selection and SR1/SR2 ordering\n"
            << table.render();
  return 0;
}
