// Regenerates Figure 2: the schedule produced by the integrated synthesis
// algorithm for the Ex benchmark, with the shared-module and shared-
// register groups (the paper's (N21,N24), (N22,N28), (N25,N27,N29) etc.).
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "report/schedule_view.hpp"

int main() {
  using namespace hlts;
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult ours =
      core::run_flow(core::FlowKind::Ours, g, {.bits = 4, .alpha = 2, .beta = 1});
  std::cout << "Figure 2: the schedule for the Ex benchmark (Ours)\n\n";
  std::cout << report::render_schedule(g, ours.schedule, ours.binding);
  return 0;
}
