// Extension study: built-in self-test (the alternative DFT school the paper
// contrasts with -- Papachristou et al. [10], Avra [1]).
//
// Each synthesized design is wrapped with per-port LFSRs and a MISR; the
// bench sweeps the BIST session length and reports self-test coverage.  A
// data path synthesized for functional testability (Ours) should also be
// the better BIST circuit: random patterns flow through the same balanced
// controllability/observability structure.
//
//   ./ablation_bist [bits]
#include <cstdlib>
#include <iostream>

#include "atpg/bist.hpp"
#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;

  report::Table table({"benchmark", "flow", "session (cycles)", "faults",
                       "BIST coverage"});
  for (const char* name : {"ex", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    core::FlowParams params = bench::paper_params(bits);
    for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowResult flow = core::run_flow(kind, g, params);
      rtl::RtlDesign design = rtl::RtlDesign::from_synthesis(
          g, flow.schedule, flow.binding, bits);
      rtl::ElaborateOptions options;
      options.bist = true;
      rtl::Elaboration elab = rtl::elaborate(design, options);
      for (int cycles : {100, 400, 1600}) {
        atpg::BistResult r = atpg::run_bist(elab.netlist, cycles);
        table.add_row({name, flow.name, report::fmt_int(cycles),
                       report::fmt_int(static_cast<long>(r.total_faults)),
                       report::fmt_percent(r.coverage)});
      }
    }
    table.add_separator();
  }
  std::cout << "Extension: built-in self-test (LFSR/MISR wrapper)\n"
            << table.render();
  return 0;
}
