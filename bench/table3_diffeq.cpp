// Regenerates Table 3: experimental results on the area-optimized Diffeq
// benchmark (adds the hardware-cost/area column).
//
//   ./table3_diffeq [num_seeds]
#include <cstdlib>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;
  hlts::dfg::Dfg g = hlts::benchmarks::make_diffeq();
  hlts::bench::run_paper_table(
      "Table 3: experimental results on the area-optimized Diffeq benchmark",
      g, /*include_area=*/true, seeds);
  return 0;
}
