// Regenerates Table 1: experimental results on the area-optimized Ex
// benchmark (fault coverage / test generation time / test cycles for the
// four synthesis flows at 4, 8 and 16 bits).
//
//   ./table1_ex [num_seeds]
#include <cstdlib>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;
  hlts::dfg::Dfg g = hlts::benchmarks::make_ex();
  hlts::bench::run_paper_table(
      "Table 1: experimental results on the area-optimized Ex benchmark", g,
      /*include_area=*/false, seeds);
  return 0;
}
