// hlts_serve: the multi-process synthesis server.
//
// A supervisor forks N shard workers (each an engine::Engine with its own
// journal directory under --journal-root) and serves the NDJSON line
// protocol of serve/protocol.hpp on a loopback TCP port, plus HTTP
// `GET /health`.  Worker death is survived by journal adoption: see
// serve/supervisor.hpp and DESIGN.md section 13.
//
//   hlts_serve --journal-root DIR [--shards N] [--port P]
//              [--max-request-bytes N] [--queue-cap N]
//              [--overload block|reject|shed] [--checkpoint-every N]
//
// Environment knobs (see util/knobs.hpp): HLTS_SERVE_SHARDS,
// HLTS_SERVE_PORT, HLTS_SERVE_MAX_REQUEST_BYTES, and the engine's
// HLTS_QUEUE_CAP / HLTS_MEM_BUDGET / HLTS_JOURNAL_DIR family.  Explicit
// flags win over the environment.
//
// Prints "listening on port <P>" on stdout once ready (scrapeable for
// --port 0 / ephemeral).

#include <cstring>
#include <iostream>
#include <string>

#include "serve/supervisor.hpp"
#include "util/error.hpp"

namespace {

using namespace hlts;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --journal-root DIR [--shards N] [--port P]"
               " [--max-request-bytes N] [--queue-cap N]"
               " [--overload block|reject|shed] [--checkpoint-every N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  options.shards = 0;  // sentinel: fall back to env/default below
  options.port = -1;
  options.max_request_bytes = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value", ErrorKind::Input);
        return argv[++i];
      };
      if (arg == "--journal-root") {
        options.journal_root = next();
      } else if (arg == "--shards") {
        options.shards = std::stoi(next());
      } else if (arg == "--port") {
        options.port = std::stoi(next());
      } else if (arg == "--max-request-bytes") {
        options.max_request_bytes = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--queue-cap") {
        options.engine.queue_capacity = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--checkpoint-every") {
        options.engine.checkpoint_every = std::stoi(next());
      } else if (arg == "--overload") {
        const std::string policy = next();
        if (policy == "block") {
          options.engine.overload_policy = engine::OverloadPolicy::Block;
        } else if (policy == "reject") {
          options.engine.overload_policy = engine::OverloadPolicy::Reject;
        } else if (policy == "shed") {
          options.engine.overload_policy = engine::OverloadPolicy::ShedOldest;
        } else {
          throw Error("unknown overload policy '" + policy + "'",
                      ErrorKind::Input);
        }
      } else {
        return usage(argv[0]);
      }
    }
    // Environment fills whatever the flags left at the sentinel, then the
    // compiled-in defaults take over.
    serve::ServerOptions env = serve::ServerOptions::from_env({});
    if (options.shards <= 0) options.shards = env.shards;
    if (options.port < 0) options.port = env.port;
    if (options.max_request_bytes == 0) {
      options.max_request_bytes = env.max_request_bytes;
    }
    if (options.journal_root.empty()) return usage(argv[0]);

    serve::Server server(std::move(options));
    std::cout << "listening on port " << server.port() << std::endl;
    server.run();
    std::cout << "shutdown complete" << std::endl;
    return 0;
  } catch (const hlts::Error& e) {
    std::cerr << "hlts_serve: " << e.what() << "\n";
    return 1;
  }
}
