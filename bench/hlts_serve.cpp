// hlts_serve: the multi-process synthesis server.
//
// A supervisor forks N shard workers (each an engine::Engine with its own
// journal directory under --journal-root) and serves the NDJSON line
// protocol of serve/protocol.hpp on a loopback TCP port, plus HTTP
// `GET /health`.  Worker death is survived by journal adoption: see
// serve/supervisor.hpp and DESIGN.md section 13.
//
//   hlts_serve --journal-root DIR [--shards N] [--port P]
//              [--max-request-bytes N] [--queue-cap N]
//              [--overload block|reject|shed] [--checkpoint-every N]
//              [--respawn] [--hedge]
//              [--codel-target-ms N] [--codel-interval-ms N]
//
// Environment knobs (see util/knobs.hpp): HLTS_SERVE_SHARDS,
// HLTS_SERVE_PORT, HLTS_SERVE_MAX_REQUEST_BYTES, HLTS_SERVE_RESPAWN,
// HLTS_SERVE_BREAKER_FAILURES, HLTS_SERVE_HEDGE, and the engine's
// HLTS_QUEUE_CAP / HLTS_MEM_BUDGET / HLTS_JOURNAL_DIR /
// HLTS_CODEL_TARGET_MS / HLTS_CODEL_INTERVAL_MS family.  Explicit flags
// win over the environment.
//
// --respawn turns on the self-healing shard lifecycle (dead workers come
// back with capped exponential backoff, replay their journal and rejoin;
// crash-loopers are quarantined); --hedge re-issues straggling submits to
// a second shard; --codel-target-ms enables CoDel adaptive shedding in
// every worker engine.  All three default off.
//
// Prints "listening on port <P>" on stdout once ready (scrapeable for
// --port 0 / ephemeral).
//
// Graceful drain: SIGTERM / SIGINT trigger the same orderly shutdown as
// the protocol's {"op":"shutdown"} -- admission stops, every in-flight
// job checkpoints and its journal retires, workers exit, and the process
// exits 0.  Both signals are blocked *before* the Server constructor
// forks the workers, so workers inherit the blocked mask and never die
// from a stray terminal signal -- only from SIGKILL (chaos) or their quit
// frame (drain).

#include <signal.h>

#include <atomic>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "serve/supervisor.hpp"
#include "util/error.hpp"

namespace {

using namespace hlts;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --journal-root DIR [--shards N] [--port P]"
               " [--max-request-bytes N] [--queue-cap N]"
               " [--overload block|reject|shed] [--checkpoint-every N]"
               " [--respawn] [--hedge]"
               " [--codel-target-ms N] [--codel-interval-ms N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  options.shards = 0;  // sentinel: fall back to env/default below
  options.port = -1;
  options.max_request_bytes = 0;
  bool respawn_flag = false;
  bool hedge_flag = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value", ErrorKind::Input);
        return argv[++i];
      };
      if (arg == "--journal-root") {
        options.journal_root = next();
      } else if (arg == "--shards") {
        options.shards = std::stoi(next());
      } else if (arg == "--port") {
        options.port = std::stoi(next());
      } else if (arg == "--max-request-bytes") {
        options.max_request_bytes = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--queue-cap") {
        options.engine.queue_capacity = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--checkpoint-every") {
        options.engine.checkpoint_every = std::stoi(next());
      } else if (arg == "--respawn") {
        respawn_flag = true;
      } else if (arg == "--hedge") {
        hedge_flag = true;
      } else if (arg == "--codel-target-ms") {
        options.engine.codel.target_ms = std::stoll(next());
      } else if (arg == "--codel-interval-ms") {
        options.engine.codel.interval_ms = std::stoll(next());
      } else if (arg == "--overload") {
        const std::string policy = next();
        if (policy == "block") {
          options.engine.overload_policy = engine::OverloadPolicy::Block;
        } else if (policy == "reject") {
          options.engine.overload_policy = engine::OverloadPolicy::Reject;
        } else if (policy == "shed") {
          options.engine.overload_policy = engine::OverloadPolicy::ShedOldest;
        } else {
          throw Error("unknown overload policy '" + policy + "'",
                      ErrorKind::Input);
        }
      } else {
        return usage(argv[0]);
      }
    }
    // Environment fills whatever the flags left at the sentinel, then the
    // compiled-in defaults take over.
    serve::ServerOptions env = serve::ServerOptions::from_env({});
    if (options.shards <= 0) options.shards = env.shards;
    if (options.port < 0) options.port = env.port;
    if (options.max_request_bytes == 0) {
      options.max_request_bytes = env.max_request_bytes;
    }
    options.lifecycle = env.lifecycle;
    if (respawn_flag) options.lifecycle.respawn = true;
    if (hedge_flag) options.lifecycle.hedge = true;
    // Engine env family (HLTS_QUEUE_CAP / HLTS_MEM_BUDGET /
    // HLTS_CODEL_*): explicit flags above win, the sentinel pattern inside
    // from_env fills the rest.
    options.engine = engine::EngineOptions::from_env(options.engine);
    if (options.journal_root.empty()) return usage(argv[0]);

    // Block the drain signals before the ctor forks workers (see file
    // comment); a dedicated thread polls for them with sigtimedwait so
    // run() itself never has to be interruptible.
    sigset_t drain_set;
    sigemptyset(&drain_set);
    sigaddset(&drain_set, SIGTERM);
    sigaddset(&drain_set, SIGINT);
    pthread_sigmask(SIG_BLOCK, &drain_set, nullptr);

    serve::Server server(std::move(options));
    std::cout << "listening on port " << server.port() << std::endl;

    std::atomic<bool> done{false};
    std::thread signal_waiter([&] {
      timespec tick{};
      tick.tv_nsec = 200 * 1000 * 1000;  // 200ms poll, so join() is prompt
      while (!done.load(std::memory_order_relaxed)) {
        if (sigtimedwait(&drain_set, nullptr, &tick) > 0) {
          std::cout << "drain: signal received, stopping admission"
                    << std::endl;
          server.stop();
          return;
        }
      }
    });

    server.run();
    done.store(true, std::memory_order_relaxed);
    signal_waiter.join();
    std::cout << "shutdown complete" << std::endl;
    return 0;
  } catch (const hlts::Error& e) {
    std::cerr << "hlts_serve: " << e.what() << "\n";
    return 1;
  }
}
