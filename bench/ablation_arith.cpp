// Extension study: gate-level implementation style of the arithmetic cores.
//
// The paper's evaluation is fixed to its module library; this bench probes
// how much of the fault-coverage / TG-time picture depends on *how* the
// modules are implemented rather than on the synthesis decisions: the same
// synthesized designs are elaborated with area-oriented cores (ripple-carry
// adders, array multiplier) and with speed-oriented cores (Kogge-Stone
// adders, Wallace-tree multiplier) and pushed through the same ATPG.
//
//   ./ablation_arith [bits] [seeds]
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  report::Table table({"benchmark", "flow", "arith", "gates", "faults",
                       "coverage", "tg (ms)", "cycles"});
  for (const char* name : {"ex", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    core::FlowParams params = bench::paper_params(bits);
    for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowResult flow = core::run_flow(kind, g, params);
      rtl::RtlDesign design = rtl::RtlDesign::from_synthesis(
          g, flow.schedule, flow.binding, bits);
      for (rtl::ArithStyle style :
           {rtl::ArithStyle::Ripple, rtl::ArithStyle::Fast}) {
        rtl::ElaborateOptions eo;
        eo.arith = style;
        rtl::Elaboration elab = rtl::elaborate(design, eo);
        double coverage = 0, tg = 0, cycles = 0;
        std::size_t faults = 0;
        for (int s = 0; s < seeds; ++s) {
          atpg::AtpgOptions options;
          options.seed = 1 + static_cast<std::uint64_t>(s) * 7919;
          atpg::AtpgResult r =
              atpg::run_atpg(elab.netlist, design.steps() + 1, options);
          coverage += r.fault_coverage;
          tg += r.tg_time_ms;
          cycles += static_cast<double>(r.test_cycles);
          faults = r.total_faults;
        }
        table.add_row(
            {name, flow.name,
             style == rtl::ArithStyle::Ripple ? "ripple/array" : "KS/Wallace",
             report::fmt_int(static_cast<long>(elab.netlist.stats().gates)),
             report::fmt_int(static_cast<long>(faults)),
             report::fmt_percent(coverage / seeds),
             report::fmt_double(tg / seeds, 1),
             report::fmt_int(static_cast<long>(cycles / seeds))});
      }
    }
    table.add_separator();
  }
  std::cout << "Extension: arithmetic implementation style\n" << table.render();
  return 0;
}
