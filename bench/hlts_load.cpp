// hlts_load: load-driving client for hlts_serve.
//
// Opens --conns connections and pumps --jobs synthesis requests through
// them (each connection runs synchronous submits; concurrency = the
// connection count), measuring per-request latency end to end through the
// wire protocol.  Optionally SIGKILLs a shard mid-run (--kill-shard /
// --kill-after-ms) to exercise the supervisor's journal-adoption failover
// under load.  Writes a JSON report (latency percentiles, per-state counts,
// the cluster health snapshot with shed/reject counters) to --out.
//
//   hlts_load --port P [--jobs N] [--conns C] [--bench ex|dct|...|mix]
//             [--flow camad|approach1|approach2|ours] [--bits N]
//             [--kill-shard K --kill-after-ms M] [--shutdown] [--out FILE]
//
// Chaos-grid mode (--chaos-grid) drives the full fault matrix instead: it
// spawns its own hlts_serve (--serve-bin) once per cell of a fault-type x
// rate grid -- clean baseline, SIGKILL failover, injected disk faults
// (HLTS_IO_FAULTS in the server), injected network faults (client-side
// HLTS_NET_FAULTS grammar), graceful drain (SIGTERM mid-run), and one cell
// combining kill + disk + net.  Every cell pushes --jobs requests through
// idempotent RetryClients and must end with zero lost jobs, zero duplicate
// replies, and every successful design bit-identical to the baseline cell;
// afterwards every shard journal is scrubbed (zero corrupt files) and the
// server must have exited 0.  Counters land in --out under "chaos_grid".
//
//   hlts_load --chaos-grid --serve-bin PATH [--jobs N] [--conns C]
//             [--bench NAME|mix] [--bits N] [--root DIR] [--out FILE]

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/net_chaos.hpp"

namespace {

using namespace hlts;
using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ms = 0;
  std::string state;  ///< FlowResultV1 state, or "error" for protocol errors
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port P [--jobs N] [--conns C] [--bench NAME|mix]"
               " [--flow NAME] [--bits N] [--kill-shard K --kill-after-ms M]"
               " [--shutdown] [--out FILE]\n"
            << "   or: " << argv0
            << " --chaos-grid --serve-bin PATH [--jobs N] [--conns C]"
               " [--bench NAME|mix] [--bits N] [--root DIR] [--out FILE]\n";
  return 2;
}

// --- chaos grid -------------------------------------------------------------

/// One cell of the fault matrix.
struct CellSpec {
  std::string name;
  std::string io_faults;   ///< HLTS_IO_FAULTS for the spawned server
  std::string net_faults;  ///< HLTS_NET_FAULTS grammar, armed client-side
  bool kill = false;       ///< SIGKILL shard 0 mid-run (protocol kill op)
  bool drain = false;      ///< SIGTERM the server mid-run
};

/// What one cell produced; "pass" is the zero-lost / zero-duplicate /
/// zero-corrupt / bit-identical contract.
struct CellOutcome {
  std::string name;
  int jobs = 0;
  int replied = 0;     ///< terminal result delivered ("succeeded"/"failed")
  int refused = 0;     ///< explicit refusal (admission, drain, journal fault)
  int lost = 0;        ///< no classified outcome after the retry budget
  int duplicates = 0;  ///< a job name answered more than once
  int mismatches = 0;  ///< succeeded design != baseline bit-for-bit
  std::int64_t reconnects = 0;
  std::int64_t corrupt_files = 0;
  std::int64_t tmp_leftovers = 0;
  std::int64_t orphans = 0;
  int server_exit = -1;
  double wall_ms = 0;

  [[nodiscard]] bool pass() const {
    return lost == 0 && duplicates == 0 && mismatches == 0 &&
           corrupt_files == 0 && server_exit == 0 &&
           replied + refused == jobs;
  }
};

/// A spawned hlts_serve child with its scraped port and stdout drainer.
struct ServerProc {
  pid_t pid = -1;
  int port = -1;
  int out_fd = -1;
  std::thread drainer;
};

/// Forks + execs the server, scrapes "listening on port N" from its
/// stdout, and leaves a drainer thread consuming the rest of the pipe.
std::optional<ServerProc> spawn_server(const std::string& serve_bin,
                                       const std::string& journal_root,
                                       int shards,
                                       const std::string& io_faults) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::cerr << "chaos-grid: pipe failed\n";
    return std::nullopt;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "chaos-grid: fork failed\n";
    ::close(fds[0]);
    ::close(fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    ::dup2(fds[1], 1);
    ::close(fds[0]);
    ::close(fds[1]);
    if (io_faults.empty()) {
      ::unsetenv("HLTS_IO_FAULTS");
    } else {
      ::setenv("HLTS_IO_FAULTS", io_faults.c_str(), 1);
    }
    ::unsetenv("HLTS_NET_FAULTS");  // net chaos is client-side only
    const std::string shard_count = std::to_string(shards);
    ::execl(serve_bin.c_str(), serve_bin.c_str(), "--journal-root",
            journal_root.c_str(), "--shards", shard_count.c_str(), "--port",
            "0", static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  ::close(fds[1]);

  ServerProc proc;
  proc.pid = pid;
  proc.out_fd = fds[0];
  std::string seen;
  char buf[256];
  const std::string marker = "listening on port ";
  while (true) {
    const auto pos = seen.find(marker);
    if (pos != std::string::npos) {
      const auto eol = seen.find('\n', pos);
      if (eol != std::string::npos) {
        proc.port = std::atoi(seen.c_str() + pos + marker.size());
        break;
      }
    }
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;  // died before announcing the port
    seen.append(buf, static_cast<std::size_t>(n));
  }
  if (proc.port <= 0) {
    std::cerr << "chaos-grid: server failed to start (output: " << seen
              << ")\n";
    ::close(fds[0]);
    (void)::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
    return std::nullopt;
  }
  proc.drainer = std::thread([fd = fds[0]] {
    char sink[1024];
    while (::read(fd, sink, sizeof(sink)) > 0) {
    }
  });
  return proc;
}

/// Waits for the child to exit (bounded); returns its exit code, or -1
/// after a timeout-forced SIGKILL.
int wait_server(ServerProc& proc, int timeout_ms) {
  int status = 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
    if (r == proc.pid) break;
    if (r < 0) {
      status = -1;
      break;
    }
    if (Clock::now() >= deadline) {
      (void)::kill(proc.pid, SIGKILL);
      (void)::waitpid(proc.pid, &status, 0);
      status = -1;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (proc.drainer.joinable()) proc.drainer.join();
  ::close(proc.out_fd);
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Runs one grid cell end to end: spawn, load (with the cell's chaos),
/// stop, scrub.  `baseline` is empty for the baseline cell itself and the
/// per-job reference results afterwards.
CellOutcome run_cell(const CellSpec& cell, const std::string& serve_bin,
                     const std::string& root, int shards, int jobs,
                     int conns,
                     const std::vector<api::FlowRequestV1>& protos,
                     std::vector<std::optional<api::FlowResultV1>>& baseline,
                     std::vector<std::optional<api::FlowResultV1>>* results_out) {
  CellOutcome out;
  out.name = cell.name;
  out.jobs = jobs;

  const std::string journal_root = root + "/" + cell.name;
  util::fs::create_directories(journal_root);

  std::string chaos_error;
  if (!util::net_chaos::configure(cell.net_faults, &chaos_error)) {
    std::cerr << "chaos-grid: bad net spec: " << chaos_error << "\n";
    return out;
  }

  auto proc = spawn_server(serve_bin, journal_root, shards, cell.io_faults);
  if (!proc) {
    util::net_chaos::clear();
    return out;
  }
  const int port = proc->port;

  std::vector<std::optional<api::FlowResultV1>> results(
      static_cast<std::size_t>(jobs));
  std::atomic<int> next_job{0};
  std::mutex tally_mutex;
  std::map<std::string, int> reply_names;

  serve::ClientOptions opts;
  opts.connect_timeout_ms = 5000;
  opts.read_timeout_ms = 120000;  // bounds injected stalls, not real work
  opts.write_timeout_ms = 5000;
  opts.retries = 12;
  opts.chaos = !cell.net_faults.empty();
  opts.retry_rejected = !cell.io_faults.empty();

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&] {
      serve::RetryClient client(port, opts);
      while (true) {
        const int j = next_job.fetch_add(1);
        if (j >= jobs) break;
        api::FlowRequestV1 req =
            protos[static_cast<std::size_t>(j) % protos.size()];
        req.name = "grid-" + std::to_string(j);
        const serve::Client::Response resp = client.submit(req);
        std::lock_guard<std::mutex> lock(tally_mutex);
        if (resp.result && resp.result->state != "rejected") {
          ++out.replied;
          if (++reply_names[resp.result->name] > 1) ++out.duplicates;
          results[static_cast<std::size_t>(j)] = *resp.result;
        } else if (resp.result) {
          ++out.refused;  // explicit "rejected" after the retry budget
        } else if (resp.error.find("shutting down") != std::string::npos ||
                   (cell.drain &&
                    (resp.error.find("connect") != std::string::npos ||
                     resp.error == "connection closed"))) {
          ++out.refused;  // drained server: refusal is the contract
        } else {
          ++out.lost;
          std::cerr << "chaos-grid[" << cell.name << "]: job " << j
                    << " lost: " << resp.error << "\n";
        }
      }
      std::lock_guard<std::mutex> lock(tally_mutex);
      out.reconnects += client.reconnects();
    });
  }

  // The cell's mid-run chaos: SIGKILL a shard over the protocol, and/or
  // SIGTERM the whole server (graceful drain).
  std::thread chaos_thread;
  if (cell.kill || cell.drain) {
    chaos_thread = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (cell.kill) {
        try {
          serve::Client killer(port);  // plain client: no chaos on this conn
          if (!killer.kill_shard(0)) {
            std::cerr << "chaos-grid[" << cell.name << "]: kill refused\n";
          }
        } catch (const Error& e) {
          std::cerr << "chaos-grid[" << cell.name << "]: kill: " << e.what()
                    << "\n";
        }
      }
      if (cell.drain) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        (void)::kill(proc->pid, SIGTERM);
      }
    });
  }

  for (std::thread& t : threads) t.join();
  if (chaos_thread.joinable()) chaos_thread.join();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  util::net_chaos::clear();

  // Orderly stop for cells the chaos did not already drain.
  if (!cell.drain) {
    try {
      serve::Client tail(port);
      (void)tail.shutdown();
    } catch (const Error&) {
      // Server already gone; wait_server settles it either way.
    }
  }
  out.server_exit = wait_server(*proc, 60000);

  // Post-mortem scrub of every shard journal: injected faults and SIGKILL
  // may leave refusals and .tmp debris, but never a corrupt committed
  // record.
  for (int k = 0; k < shards; ++k) {
    const engine::Journal::ScrubReport report =
        engine::Engine::scrub(journal_root + "/shard-" + std::to_string(k));
    out.corrupt_files += report.corrupt + report.unknown;
    out.tmp_leftovers += report.temp_leftovers;
    out.orphans += report.orphans;
  }

  // Bit-identity against the clean cell: every successful design must
  // match the baseline design for the same job index exactly.
  for (int j = 0; j < jobs; ++j) {
    const auto& got = results[static_cast<std::size_t>(j)];
    if (!got || got->state != "succeeded") continue;
    const auto& want = baseline[static_cast<std::size_t>(j)];
    if (!want || !want->has_design) continue;
    if (!got->design_identical(*want)) {
      ++out.mismatches;
      std::cerr << "chaos-grid[" << cell.name << "]: job " << j
                << " design differs from baseline\n";
    }
  }
  if (results_out != nullptr) *results_out = std::move(results);
  return out;
}

int run_chaos_grid(const std::string& serve_bin, const std::string& root,
                   int jobs, int conns,
                   const std::vector<api::FlowRequestV1>& protos,
                   const std::string& out_path) {
  const int shards = 3;
  // Rates are per-operation probabilities; seeds make every cell
  // reproducible.  "low" is background noise, "high" is a genuinely sick
  // environment.
  const std::vector<CellSpec> grid = {
      // name            io_faults (server)        net_faults (client)
      {"baseline", "", "", false, false},
      {"kill", "", "", true, false},
      {"disk-low", "write:short:0.05:7,fsync:eio:0.05:11", "", false, false},
      {"disk-high",
       "write:enospc:0.2:13,rename:eio:0.1:17,fsync:eio:0.15:19", "", false,
       false},
      {"net-low", "", "read:stall:0.05:23:20,write:reset:0.05:29", false,
       false},
      {"net-high", "",
       "connect:stall:0.2:31:30,read:truncate:0.1:37:3,write:reset:0.15:41",
       false, false},
      {"drain", "", "", false, true},
      {"kill-disk-net", "write:short:0.05:43,fsync:eio:0.05:47",
       "read:stall:0.05:53:20,write:reset:0.05:59", true, false},
  };

  std::vector<std::optional<api::FlowResultV1>> baseline(
      static_cast<std::size_t>(jobs));
  std::vector<CellOutcome> outcomes;
  for (const CellSpec& cell : grid) {
    std::cout << "chaos-grid: cell " << cell.name << " (" << jobs
              << " jobs)...\n";
    if (cell.name == "baseline") {
      outcomes.push_back(run_cell(cell, serve_bin, root, shards, jobs, conns,
                                  protos, baseline, &baseline));
      // The reference cell must be perfect or the grid is meaningless.
      if (!outcomes.back().pass() || outcomes.back().refused != 0) {
        std::cerr << "chaos-grid: baseline cell failed\n";
      }
    } else {
      outcomes.push_back(run_cell(cell, serve_bin, root, shards, jobs, conns,
                                  protos, baseline, nullptr));
    }
    const CellOutcome& o = outcomes.back();
    std::cout << "chaos-grid: cell " << o.name << ": replied " << o.replied
              << ", refused " << o.refused << ", lost " << o.lost
              << ", duplicates " << o.duplicates << ", mismatches "
              << o.mismatches << ", corrupt " << o.corrupt_files
              << ", tmp " << o.tmp_leftovers << ", reconnects "
              << o.reconnects << ", server_exit " << o.server_exit
              << (o.pass() ? " [pass]" : " [FAIL]") << "\n";
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serving");
  w.key("mode").value("chaos_grid");
  w.key("jobs_per_cell").value(jobs);
  w.key("conns").value(conns);
  w.key("shards").value(shards);
  w.key("chaos_grid").begin_array();
  bool all_pass = true;
  for (const CellOutcome& o : outcomes) {
    all_pass = all_pass && o.pass();
    w.begin_object();
    w.key("cell").value(o.name);
    w.key("jobs").value(o.jobs);
    w.key("replied").value(o.replied);
    w.key("refused").value(o.refused);
    w.key("lost").value(o.lost);
    w.key("duplicates").value(o.duplicates);
    w.key("mismatches").value(o.mismatches);
    w.key("reconnects").value(o.reconnects);
    w.key("corrupt_files").value(o.corrupt_files);
    w.key("tmp_leftovers").value(o.tmp_leftovers);
    w.key("orphan_checkpoints").value(o.orphans);
    w.key("server_exit").value(o.server_exit);
    w.key("wall_ms").value(o.wall_ms);
    w.key("pass").value(o.pass());
    w.end_object();
  }
  w.end_array();
  w.key("pass").value(all_pass);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::cout << "wrote " << out_path << " ("
            << (all_pass ? "all cells pass" : "FAILURES") << ")\n";
  return all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  int jobs = -1;  // default: 64 load mode, 24 per cell in grid mode
  int conns = 4;
  int bits = 8;
  std::string bench = "mix";
  std::string flow = "ours";
  int kill_shard = -1;
  int kill_after_ms = 0;
  bool shutdown_after = false;
  bool chaos_grid = false;
  std::string serve_bin;
  std::string root = "chaos-grid";
  std::string out_path = "BENCH_serving.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value", ErrorKind::Input);
        return argv[++i];
      };
      if (arg == "--port") port = std::stoi(next());
      else if (arg == "--jobs") jobs = std::stoi(next());
      else if (arg == "--conns") conns = std::stoi(next());
      else if (arg == "--bits") bits = std::stoi(next());
      else if (arg == "--bench") bench = next();
      else if (arg == "--flow") flow = next();
      else if (arg == "--kill-shard") kill_shard = std::stoi(next());
      else if (arg == "--kill-after-ms") kill_after_ms = std::stoi(next());
      else if (arg == "--shutdown") shutdown_after = true;
      else if (arg == "--chaos-grid") chaos_grid = true;
      else if (arg == "--serve-bin") serve_bin = next();
      else if (arg == "--root") root = next();
      else if (arg == "--out") out_path = next();
      else return usage(argv[0]);
    }
    if (jobs < 0) jobs = chaos_grid ? 24 : 64;
    if (chaos_grid) {
      if (serve_bin.empty() || jobs < 1 || conns < 1) return usage(argv[0]);
    } else if (port < 0 || jobs < 1 || conns < 1) {
      return usage(argv[0]);
    }

    const std::vector<std::string> mix =
        bench == "mix" ? benchmarks::benchmark_names()
                       : std::vector<std::string>{bench};
    const core::FlowKind kind = api::flow_from_token(flow);

    // Pre-serialize one request document per benchmark in the mix; each
    // submitted job clones it under a unique name.
    std::vector<api::FlowRequestV1> protos;
    for (const std::string& b : mix) {
      api::FlowRequestV1 req;
      req.kind = kind;
      req.dfg = benchmarks::make_benchmark(b);
      req.params.bits = bits;
      req.params.num_threads = 1;  // the server's engines own the cores
      protos.push_back(std::move(req));
    }

    if (chaos_grid) {
      return run_chaos_grid(serve_bin, root, jobs, conns, protos, out_path);
    }

    std::atomic<int> next_job{0};
    std::mutex samples_mutex;
    std::vector<Sample> samples;
    samples.reserve(static_cast<std::size_t>(jobs));

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        try {
          serve::Client client(port);
          while (true) {
            const int j = next_job.fetch_add(1);
            if (j >= jobs) break;
            api::FlowRequestV1 req = protos[static_cast<std::size_t>(j) % protos.size()];
            req.name = "load-" + std::to_string(j) + "-" +
                       mix[static_cast<std::size_t>(j) % mix.size()];
            const auto start = Clock::now();
            const serve::Client::Response resp = client.submit(req);
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
            Sample s;
            s.latency_ms = ms;
            s.state = resp.ok && resp.result ? resp.result->state : "error";
            std::lock_guard<std::mutex> lock(samples_mutex);
            samples.push_back(std::move(s));
          }
        } catch (const Error& e) {
          std::cerr << "conn " << c << ": " << e.what() << "\n";
        }
      });
    }

    // The chaos hook: kill one shard while the fleet is under load.
    std::thread killer;
    if (kill_shard >= 0) {
      killer = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
        try {
          serve::Client chaos(port);
          if (!chaos.kill_shard(kill_shard)) {
            std::cerr << "kill-shard " << kill_shard << " refused\n";
          }
        } catch (const Error& e) {
          std::cerr << "kill-shard: " << e.what() << "\n";
        }
      });
    }

    for (std::thread& t : threads) t.join();
    if (killer.joinable()) killer.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    serve::Client tail(port);
    const serve::Client::Response health = tail.health();
    if (shutdown_after && !tail.shutdown()) {
      std::cerr << "shutdown not acknowledged\n";
    }

    std::vector<double> lat;
    std::map<std::string, int> states;
    lat.reserve(samples.size());
    for (const Sample& s : samples) {
      lat.push_back(s.latency_ms);
      ++states[s.state];
    }
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (const double v : lat) sum += v;

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("serving");
    w.key("jobs").value(jobs);
    w.key("conns").value(conns);
    w.key("flow").value(flow);
    w.key("mix").begin_array();
    for (const std::string& b : mix) w.value(b);
    w.end_array();
    w.key("completed").value(static_cast<std::int64_t>(samples.size()));
    w.key("wall_ms").value(wall_ms);
    w.key("throughput_jobs_per_s")
        .value(wall_ms > 0 ? 1000.0 * static_cast<double>(samples.size()) / wall_ms
                           : 0.0);
    w.key("latency_ms").begin_object();
    w.key("p50").value(percentile(lat, 0.50));
    w.key("p95").value(percentile(lat, 0.95));
    w.key("p99").value(percentile(lat, 0.99));
    w.key("mean").value(lat.empty() ? 0.0 : sum / static_cast<double>(lat.size()));
    w.key("max").value(lat.empty() ? 0.0 : lat.back());
    w.end_object();
    w.key("states").begin_object();
    for (const auto& [state, count] : states) w.key(state).value(count);
    w.end_object();
    if (kill_shard >= 0) {
      w.key("killed_shard").value(kill_shard);
      w.key("kill_after_ms").value(kill_after_ms);
    }
    w.key("cluster_health");
    if (health.ok && health.health) {
      w.raw_value(util::json_dump(*health.health));
    } else {
      w.null_value();
    }
    w.end_object();

    std::ofstream out(out_path);
    out << w.str() << "\n";
    std::cout << "wrote " << out_path << " (" << samples.size() << "/" << jobs
              << " responses, p50 " << percentile(lat, 0.50) << " ms)\n";
    const int errors = states.count("error") != 0 ? states.at("error") : 0;
    return samples.size() == static_cast<std::size_t>(jobs) && errors == 0 ? 0
                                                                           : 1;
  } catch (const Error& e) {
    std::cerr << "hlts_load: " << e.what() << "\n";
    return 1;
  }
}
