// hlts_load: load-driving client for hlts_serve.
//
// Opens --conns connections and pumps --jobs synthesis requests through
// them (each connection runs synchronous submits; concurrency = the
// connection count), measuring per-request latency end to end through the
// wire protocol.  Optionally SIGKILLs a shard mid-run (--kill-shard /
// --kill-after-ms) to exercise the supervisor's journal-adoption failover
// under load.  Writes a JSON report (latency percentiles, per-state counts,
// the cluster health snapshot with shed/reject counters) to --out.
//
//   hlts_load --port P [--jobs N] [--conns C] [--bench ex|dct|...|mix]
//             [--flow camad|approach1|approach2|ours] [--bits N]
//             [--kill-shard K --kill-after-ms M] [--shutdown] [--out FILE]
//
// Chaos-grid mode (--chaos-grid) drives the full fault matrix instead: it
// spawns its own hlts_serve (--serve-bin) once per cell of a fault-type x
// rate grid -- clean baseline, SIGKILL failover, injected disk faults
// (HLTS_IO_FAULTS in the server), injected network faults (client-side
// HLTS_NET_FAULTS grammar), graceful drain (SIGTERM mid-run), and one cell
// combining kill + disk + net.  Every cell pushes --jobs requests through
// idempotent RetryClients and must end with zero lost jobs, zero duplicate
// replies, and every successful design bit-identical to the baseline cell;
// afterwards every shard journal is scrubbed (zero corrupt files) and the
// server must have exited 0.  Counters land in --out under "chaos_grid".
//
//   hlts_load --chaos-grid --serve-bin PATH [--jobs N] [--conns C]
//             [--bench NAME|mix] [--bits N] [--root DIR] [--out FILE]
//
// Soak-grid mode (--soak-grid) proves the self-healing lifecycle and the
// adaptive overload controls under sustained pressure.  Each cell of a
// traffic-pattern x aggressiveness grid spawns its own hlts_serve with
// respawn + CoDel shedding armed, generates its job stream from the seeded
// workload library (src/workload -- every request document is a pure
// function of --seed), and drives three phases -- warm-up, overload (low
// ~0.75x / high 2x of the calibrated capacity), recovery -- with the
// per-phase job budget spread over the connections by the traffic pattern
// (uniform / diagonal / quasi-diagonal / log-diagonal).  --kill-shard K
// SIGKILLs shard K mid-overload; the cell then requires the shard to
// respawn, replay its journal and rejoin before it passes.  Every cell
// asserts zero lost jobs and zero duplicate replies (idempotent
// RetryClients + flow-token dedup); per-phase latency percentiles and
// shed/reject/hedge counter deltas land in --out under "soak_grid".
//
//   hlts_load --soak-grid --serve-bin PATH [--jobs N] [--conns C]
//             [--seed S] [--gen-ops N] [--shards N] [--flow NAME]
//             [--pattern NAME] [--aggressiveness low|high]
//             [--kill-shard K] [--root DIR] [--out FILE]

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "core/flows.hpp"
#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/net_chaos.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace hlts;
using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ms = 0;
  std::string state;  ///< FlowResultV1 state, or "error" for protocol errors
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port P [--jobs N] [--conns C] [--bench NAME|mix]"
               " [--flow NAME] [--bits N] [--kill-shard K --kill-after-ms M]"
               " [--shutdown] [--out FILE]\n"
            << "   or: " << argv0
            << " --chaos-grid --serve-bin PATH [--jobs N] [--conns C]"
               " [--bench NAME|mix] [--bits N] [--root DIR] [--out FILE]\n"
            << "   or: " << argv0
            << " --soak-grid --serve-bin PATH [--jobs N] [--conns C]"
               " [--seed S] [--gen-ops N] [--shards N] [--flow NAME]"
               " [--pattern NAME] [--aggressiveness low|high]"
               " [--kill-shard K] [--root DIR] [--out FILE]\n";
  return 2;
}

// --- chaos grid -------------------------------------------------------------

/// One cell of the fault matrix.
struct CellSpec {
  std::string name;
  std::string io_faults;   ///< HLTS_IO_FAULTS for the spawned server
  std::string net_faults;  ///< HLTS_NET_FAULTS grammar, armed client-side
  bool kill = false;       ///< SIGKILL shard 0 mid-run (protocol kill op)
  bool drain = false;      ///< SIGTERM the server mid-run
};

/// What one cell produced; "pass" is the zero-lost / zero-duplicate /
/// zero-corrupt / bit-identical contract.
struct CellOutcome {
  std::string name;
  int jobs = 0;
  int replied = 0;     ///< terminal result delivered ("succeeded"/"failed")
  int refused = 0;     ///< explicit refusal (admission, drain, journal fault)
  int lost = 0;        ///< no classified outcome after the retry budget
  int duplicates = 0;  ///< a job name answered more than once
  int mismatches = 0;  ///< succeeded design != baseline bit-for-bit
  std::int64_t reconnects = 0;
  std::int64_t corrupt_files = 0;
  std::int64_t tmp_leftovers = 0;
  std::int64_t orphans = 0;
  int server_exit = -1;
  double wall_ms = 0;

  [[nodiscard]] bool pass() const {
    return lost == 0 && duplicates == 0 && mismatches == 0 &&
           corrupt_files == 0 && server_exit == 0 &&
           replied + refused == jobs;
  }
};

/// A spawned hlts_serve child with its scraped port and stdout drainer.
struct ServerProc {
  pid_t pid = -1;
  int port = -1;
  int out_fd = -1;
  std::thread drainer;
};

/// Forks + execs the server, scrapes "listening on port N" from its
/// stdout, and leaves a drainer thread consuming the rest of the pipe.
/// `extra_env` entries are set in the child before exec (an empty value
/// unsets the variable); `extra_args` are appended to the command line.
std::optional<ServerProc> spawn_server(
    const std::string& serve_bin, const std::string& journal_root, int shards,
    const std::string& io_faults,
    const std::vector<std::pair<std::string, std::string>>& extra_env = {},
    const std::vector<std::string>& extra_args = {}) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::cerr << "chaos-grid: pipe failed\n";
    return std::nullopt;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "chaos-grid: fork failed\n";
    ::close(fds[0]);
    ::close(fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    ::dup2(fds[1], 1);
    ::close(fds[0]);
    ::close(fds[1]);
    if (io_faults.empty()) {
      ::unsetenv("HLTS_IO_FAULTS");
    } else {
      ::setenv("HLTS_IO_FAULTS", io_faults.c_str(), 1);
    }
    ::unsetenv("HLTS_NET_FAULTS");  // net chaos is client-side only
    for (const auto& [key, value] : extra_env) {
      if (value.empty()) {
        ::unsetenv(key.c_str());
      } else {
        ::setenv(key.c_str(), value.c_str(), 1);
      }
    }
    const std::string shard_count = std::to_string(shards);
    std::vector<std::string> args = {serve_bin,     "--journal-root",
                                     journal_root,  "--shards",
                                     shard_count,   "--port",
                                     "0"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv_c;
    argv_c.reserve(args.size() + 1);
    for (std::string& a : args) argv_c.push_back(a.data());
    argv_c.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv_c.data());
    std::_Exit(127);  // exec failed
  }
  ::close(fds[1]);

  ServerProc proc;
  proc.pid = pid;
  proc.out_fd = fds[0];
  std::string seen;
  char buf[256];
  const std::string marker = "listening on port ";
  while (true) {
    const auto pos = seen.find(marker);
    if (pos != std::string::npos) {
      const auto eol = seen.find('\n', pos);
      if (eol != std::string::npos) {
        proc.port = std::atoi(seen.c_str() + pos + marker.size());
        break;
      }
    }
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;  // died before announcing the port
    seen.append(buf, static_cast<std::size_t>(n));
  }
  if (proc.port <= 0) {
    std::cerr << "chaos-grid: server failed to start (output: " << seen
              << ")\n";
    ::close(fds[0]);
    (void)::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
    return std::nullopt;
  }
  proc.drainer = std::thread([fd = fds[0]] {
    char sink[1024];
    while (::read(fd, sink, sizeof(sink)) > 0) {
    }
  });
  return proc;
}

/// Waits for the child to exit (bounded); returns its exit code, or -1
/// after a timeout-forced SIGKILL.
int wait_server(ServerProc& proc, int timeout_ms) {
  int status = 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
    if (r == proc.pid) break;
    if (r < 0) {
      status = -1;
      break;
    }
    if (Clock::now() >= deadline) {
      (void)::kill(proc.pid, SIGKILL);
      (void)::waitpid(proc.pid, &status, 0);
      status = -1;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (proc.drainer.joinable()) proc.drainer.join();
  ::close(proc.out_fd);
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Runs one grid cell end to end: spawn, load (with the cell's chaos),
/// stop, scrub.  `baseline` is empty for the baseline cell itself and the
/// per-job reference results afterwards.
CellOutcome run_cell(const CellSpec& cell, const std::string& serve_bin,
                     const std::string& root, int shards, int jobs,
                     int conns,
                     const std::vector<api::FlowRequestV1>& protos,
                     std::vector<std::optional<api::FlowResultV1>>& baseline,
                     std::vector<std::optional<api::FlowResultV1>>* results_out) {
  CellOutcome out;
  out.name = cell.name;
  out.jobs = jobs;

  const std::string journal_root = root + "/" + cell.name;
  util::fs::create_directories(journal_root);

  std::string chaos_error;
  if (!util::net_chaos::configure(cell.net_faults, &chaos_error)) {
    std::cerr << "chaos-grid: bad net spec: " << chaos_error << "\n";
    return out;
  }

  auto proc = spawn_server(serve_bin, journal_root, shards, cell.io_faults);
  if (!proc) {
    util::net_chaos::clear();
    return out;
  }
  const int port = proc->port;

  std::vector<std::optional<api::FlowResultV1>> results(
      static_cast<std::size_t>(jobs));
  std::atomic<int> next_job{0};
  std::mutex tally_mutex;
  std::map<std::string, int> reply_names;

  serve::ClientOptions opts;
  opts.connect_timeout_ms = 5000;
  opts.read_timeout_ms = 120000;  // bounds injected stalls, not real work
  opts.write_timeout_ms = 5000;
  opts.retries = 12;
  opts.chaos = !cell.net_faults.empty();
  opts.retry_rejected = !cell.io_faults.empty();

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&] {
      serve::RetryClient client(port, opts);
      while (true) {
        const int j = next_job.fetch_add(1);
        if (j >= jobs) break;
        api::FlowRequestV1 req =
            protos[static_cast<std::size_t>(j) % protos.size()];
        req.name = "grid-" + std::to_string(j);
        const serve::Client::Response resp = client.submit(req);
        std::lock_guard<std::mutex> lock(tally_mutex);
        if (resp.result && resp.result->state != "rejected") {
          ++out.replied;
          if (++reply_names[resp.result->name] > 1) ++out.duplicates;
          results[static_cast<std::size_t>(j)] = *resp.result;
        } else if (resp.result) {
          ++out.refused;  // explicit "rejected" after the retry budget
        } else if (resp.error.find("shutting down") != std::string::npos ||
                   (cell.drain &&
                    (resp.error.find("connect") != std::string::npos ||
                     resp.error == "connection closed"))) {
          ++out.refused;  // drained server: refusal is the contract
        } else {
          ++out.lost;
          std::cerr << "chaos-grid[" << cell.name << "]: job " << j
                    << " lost: " << resp.error << "\n";
        }
      }
      std::lock_guard<std::mutex> lock(tally_mutex);
      out.reconnects += client.reconnects();
    });
  }

  // The cell's mid-run chaos: SIGKILL a shard over the protocol, and/or
  // SIGTERM the whole server (graceful drain).
  std::thread chaos_thread;
  if (cell.kill || cell.drain) {
    chaos_thread = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (cell.kill) {
        try {
          serve::Client killer(port);  // plain client: no chaos on this conn
          if (!killer.kill_shard(0)) {
            std::cerr << "chaos-grid[" << cell.name << "]: kill refused\n";
          }
        } catch (const Error& e) {
          std::cerr << "chaos-grid[" << cell.name << "]: kill: " << e.what()
                    << "\n";
        }
      }
      if (cell.drain) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        (void)::kill(proc->pid, SIGTERM);
      }
    });
  }

  for (std::thread& t : threads) t.join();
  if (chaos_thread.joinable()) chaos_thread.join();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  util::net_chaos::clear();

  // Orderly stop for cells the chaos did not already drain.
  if (!cell.drain) {
    try {
      serve::Client tail(port);
      (void)tail.shutdown();
    } catch (const Error&) {
      // Server already gone; wait_server settles it either way.
    }
  }
  out.server_exit = wait_server(*proc, 60000);

  // Post-mortem scrub of every shard journal: injected faults and SIGKILL
  // may leave refusals and .tmp debris, but never a corrupt committed
  // record.
  for (int k = 0; k < shards; ++k) {
    const engine::Journal::ScrubReport report =
        engine::Engine::scrub(journal_root + "/shard-" + std::to_string(k));
    out.corrupt_files += report.corrupt + report.unknown;
    out.tmp_leftovers += report.temp_leftovers;
    out.orphans += report.orphans;
  }

  // Bit-identity against the clean cell: every successful design must
  // match the baseline design for the same job index exactly.
  for (int j = 0; j < jobs; ++j) {
    const auto& got = results[static_cast<std::size_t>(j)];
    if (!got || got->state != "succeeded") continue;
    const auto& want = baseline[static_cast<std::size_t>(j)];
    if (!want || !want->has_design) continue;
    if (!got->design_identical(*want)) {
      ++out.mismatches;
      std::cerr << "chaos-grid[" << cell.name << "]: job " << j
                << " design differs from baseline\n";
    }
  }
  if (results_out != nullptr) *results_out = std::move(results);
  return out;
}

int run_chaos_grid(const std::string& serve_bin, const std::string& root,
                   int jobs, int conns,
                   const std::vector<api::FlowRequestV1>& protos,
                   const std::string& out_path) {
  const int shards = 3;
  // Rates are per-operation probabilities; seeds make every cell
  // reproducible.  "low" is background noise, "high" is a genuinely sick
  // environment.
  const std::vector<CellSpec> grid = {
      // name            io_faults (server)        net_faults (client)
      {"baseline", "", "", false, false},
      {"kill", "", "", true, false},
      {"disk-low", "write:short:0.05:7,fsync:eio:0.05:11", "", false, false},
      {"disk-high",
       "write:enospc:0.2:13,rename:eio:0.1:17,fsync:eio:0.15:19", "", false,
       false},
      {"net-low", "", "read:stall:0.05:23:20,write:reset:0.05:29", false,
       false},
      {"net-high", "",
       "connect:stall:0.2:31:30,read:truncate:0.1:37:3,write:reset:0.15:41",
       false, false},
      {"drain", "", "", false, true},
      {"kill-disk-net", "write:short:0.05:43,fsync:eio:0.05:47",
       "read:stall:0.05:53:20,write:reset:0.05:59", true, false},
  };

  std::vector<std::optional<api::FlowResultV1>> baseline(
      static_cast<std::size_t>(jobs));
  std::vector<CellOutcome> outcomes;
  for (const CellSpec& cell : grid) {
    std::cout << "chaos-grid: cell " << cell.name << " (" << jobs
              << " jobs)...\n";
    if (cell.name == "baseline") {
      outcomes.push_back(run_cell(cell, serve_bin, root, shards, jobs, conns,
                                  protos, baseline, &baseline));
      // The reference cell must be perfect or the grid is meaningless.
      if (!outcomes.back().pass() || outcomes.back().refused != 0) {
        std::cerr << "chaos-grid: baseline cell failed\n";
      }
    } else {
      outcomes.push_back(run_cell(cell, serve_bin, root, shards, jobs, conns,
                                  protos, baseline, nullptr));
    }
    const CellOutcome& o = outcomes.back();
    std::cout << "chaos-grid: cell " << o.name << ": replied " << o.replied
              << ", refused " << o.refused << ", lost " << o.lost
              << ", duplicates " << o.duplicates << ", mismatches "
              << o.mismatches << ", corrupt " << o.corrupt_files
              << ", tmp " << o.tmp_leftovers << ", reconnects "
              << o.reconnects << ", server_exit " << o.server_exit
              << (o.pass() ? " [pass]" : " [FAIL]") << "\n";
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serving");
  w.key("mode").value("chaos_grid");
  w.key("jobs_per_cell").value(jobs);
  w.key("conns").value(conns);
  w.key("shards").value(shards);
  w.key("chaos_grid").begin_array();
  bool all_pass = true;
  for (const CellOutcome& o : outcomes) {
    all_pass = all_pass && o.pass();
    w.begin_object();
    w.key("cell").value(o.name);
    w.key("jobs").value(o.jobs);
    w.key("replied").value(o.replied);
    w.key("refused").value(o.refused);
    w.key("lost").value(o.lost);
    w.key("duplicates").value(o.duplicates);
    w.key("mismatches").value(o.mismatches);
    w.key("reconnects").value(o.reconnects);
    w.key("corrupt_files").value(o.corrupt_files);
    w.key("tmp_leftovers").value(o.tmp_leftovers);
    w.key("orphan_checkpoints").value(o.orphans);
    w.key("server_exit").value(o.server_exit);
    w.key("wall_ms").value(o.wall_ms);
    w.key("pass").value(o.pass());
    w.end_object();
  }
  w.end_array();
  w.key("pass").value(all_pass);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::cout << "wrote " << out_path << " ("
            << (all_pass ? "all cells pass" : "FAILURES") << ")\n";
  return all_pass ? 0 : 1;
}

// --- soak grid --------------------------------------------------------------

/// Shed/reject/lifecycle counters scraped from one cluster-health snapshot;
/// phase numbers are deltas between consecutive snapshots.
struct ClusterCounters {
  std::int64_t sheds = 0;
  std::int64_t rejected = 0;
  std::int64_t hedges_won = 0;
  std::int64_t hedges_cancelled = 0;
  std::int64_t respawns = 0;
  std::int64_t quarantined = 0;
  std::int64_t live = 0;
  bool ok = false;
};

ClusterCounters read_cluster(int port) {
  ClusterCounters c;
  try {
    serve::Client client(port);
    const serve::Client::Response resp = client.health();
    if (resp.ok && resp.health) {
      if (const util::JsonValue* cl = resp.health->find("cluster")) {
        c.sheds = cl->get_int("sheds");
        c.rejected = cl->get_int("rejected");
        c.hedges_won = cl->get_int("hedges_won");
        c.hedges_cancelled = cl->get_int("hedges_cancelled");
        c.respawns = cl->get_int("respawns");
        c.quarantined = cl->get_int("quarantined_shards");
        c.live = cl->get_int("live_shards");
        c.ok = true;
      }
    }
  } catch (const Error&) {
    // Snapshot is best-effort; a failed probe leaves zeros.
  }
  return c;
}

/// One phase of a soak cell, after the fact.
struct PhaseOutcome {
  std::string name;
  int jobs = 0;
  int replied = 0;
  int refused = 0;
  double p50 = 0, p95 = 0, p99 = 0, max = 0;
  std::int64_t sheds = 0;     ///< delta over the phase
  std::int64_t rejected = 0;  ///< delta over the phase
};

/// One cell of the pattern x aggressiveness grid.
struct SoakOutcome {
  std::string pattern;
  std::string aggressiveness;
  int jobs = 0;
  int replied = 0;
  int refused = 0;
  int lost = 0;
  int duplicates = 0;
  int killed_shard = -1;
  bool rejoined = true;  ///< vacuously true when no shard was killed
  std::int64_t respawns = 0;
  std::int64_t quarantined = 0;
  std::int64_t hedges_won = 0;
  std::int64_t hedges_cancelled = 0;
  int server_exit = -1;
  double wall_ms = 0;
  std::vector<PhaseOutcome> phases;

  [[nodiscard]] bool pass() const {
    return lost == 0 && duplicates == 0 && rejoined && server_exit == 0 &&
           replied + refused == jobs;
  }
};

/// Runs one soak cell: spawn a self-healing server (respawn + CoDel armed),
/// drive warm/overload/recover phases with the pattern's connection split,
/// optionally SIGKILL a shard mid-overload, and require it back in the ring
/// before the cell passes.
SoakOutcome run_soak_cell(const std::string& serve_bin, const std::string& root,
                          workload::Pattern pattern, bool high, int shards,
                          int jobs, int conns, int kill_shard,
                          const std::vector<api::FlowRequestV1>& protos,
                          const std::vector<int>& proto_of_job,
                          double capacity_jps) {
  SoakOutcome out;
  out.pattern = workload::pattern_name(pattern);
  out.aggressiveness = high ? "high" : "low";
  out.jobs = jobs;
  out.killed_shard = kill_shard;

  const std::string cell_name =
      out.pattern + "-" + out.aggressiveness;
  const std::string journal_root = root + "/" + cell_name;
  util::fs::create_directories(journal_root);

  // Overload control + self-healing, all through the public knobs: a small
  // bounded queue with ShedOldest, CoDel tightening on sojourn times, and
  // the respawn lifecycle for the kill cells.
  const std::vector<std::pair<std::string, std::string>> env = {
      {"HLTS_SERVE_RESPAWN", "1"},
      {"HLTS_CODEL_TARGET_MS", "75"},
      {"HLTS_CODEL_INTERVAL_MS", "100"},
  };
  const std::vector<std::string> args = {"--queue-cap", "16", "--overload",
                                         "shed"};
  auto proc = spawn_server(serve_bin, journal_root, shards, "", env, args);
  if (!proc) return out;
  const int port = proc->port;

  // Phase plan: warm up below capacity, overload at the cell's
  // aggressiveness, then back off and watch the controller recover.
  struct PhaseSpec {
    const char* name;
    double rate_mult;
    double jobs_fraction;
  };
  const double overload_mult = high ? 2.0 : 0.75;
  const std::vector<PhaseSpec> plan = {
      {"warm", 0.5, 0.25},
      {"overload", overload_mult, 0.5},
      {"recover", 0.5, 0.25},
  };
  const int phases = static_cast<int>(plan.size());

  std::mutex tally_mutex;
  std::map<std::string, int> reply_names;
  int global_job = 0;

  serve::ClientOptions copts;
  copts.connect_timeout_ms = 5000;
  copts.read_timeout_ms = 120000;
  copts.write_timeout_ms = 5000;
  copts.retries = 10;

  ClusterCounters before = read_cluster(port);
  const auto t0 = Clock::now();
  int assigned_total = 0;
  for (int ph = 0; ph < phases; ++ph) {
    int phase_jobs = static_cast<int>(
        std::llround(plan[static_cast<std::size_t>(ph)].jobs_fraction *
                     static_cast<double>(jobs)));
    if (ph == phases - 1) phase_jobs = jobs - assigned_total;  // exact total
    assigned_total += phase_jobs;

    const std::vector<int> quotas =
        workload::apportion(pattern, conns, phases, ph, phase_jobs);
    const double phase_rate =
        plan[static_cast<std::size_t>(ph)].rate_mult * capacity_jps;

    std::vector<double> lat;
    lat.reserve(static_cast<std::size_t>(phase_jobs));
    int replied = 0, refused = 0, lost = 0;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    int base_job = global_job;
    int offset = 0;
    std::vector<int> first_job(static_cast<std::size_t>(conns), 0);
    for (int c = 0; c < conns; ++c) {
      first_job[static_cast<std::size_t>(c)] = base_job + offset;
      offset += quotas[static_cast<std::size_t>(c)];
    }
    global_job += phase_jobs;

    for (int c = 0; c < conns; ++c) {
      const int quota = quotas[static_cast<std::size_t>(c)];
      if (quota == 0) continue;
      const double conn_rate =
          phase_jobs > 0 ? phase_rate * static_cast<double>(quota) /
                               static_cast<double>(phase_jobs)
                         : 0.0;
      const double interval_ms = conn_rate > 0 ? 1000.0 / conn_rate : 0.0;
      threads.emplace_back([&, c, quota, interval_ms,
                            first = first_job[static_cast<std::size_t>(c)]] {
        serve::RetryClient client(port, copts);
        const auto conn_t0 = Clock::now();
        for (int i = 0; i < quota; ++i) {
          // Open-loop pacing: send i no earlier than its schedule slot; a
          // backed-up server makes this degrade into closed-loop pressure,
          // which is the point of the overload phase.
          const auto slot =
              conn_t0 + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                interval_ms * static_cast<double>(i)));
          std::this_thread::sleep_until(slot);
          const int j = first + i;
          api::FlowRequestV1 req =
              protos[static_cast<std::size_t>(
                  proto_of_job[static_cast<std::size_t>(j)])];
          req.name = "soak-" + cell_name + "-" + std::to_string(j);
          const auto start = Clock::now();
          const serve::Client::Response resp = client.submit(req);
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
          std::lock_guard<std::mutex> lock(tally_mutex);
          lat.push_back(ms);
          if (resp.result && resp.result->state != "rejected") {
            ++replied;
            if (++reply_names[resp.result->name] > 1) {
              ++out.duplicates;
              std::cerr << "soak[" << cell_name << "]: duplicate reply for "
                        << resp.result->name << " (submitted " << req.name
                        << ")\n";
            }
          } else if (resp.result) {
            ++refused;  // shed/rejected by admission control: a real reply
          } else {
            ++lost;
            std::cerr << "soak[" << cell_name << "]: job " << j
                      << " lost: " << resp.error << "\n";
          }
        }
      });
    }

    // The kill lands mid-overload, while the queue is hot.
    std::thread killer;
    if (kill_shard >= 0 && ph == 1) {
      killer = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        try {
          serve::Client chaos(port);
          if (!chaos.kill_shard(kill_shard)) {
            std::cerr << "soak[" << cell_name << "]: kill refused\n";
          }
        } catch (const Error& e) {
          std::cerr << "soak[" << cell_name << "]: kill: " << e.what() << "\n";
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (killer.joinable()) killer.join();

    const ClusterCounters after = read_cluster(port);
    PhaseOutcome po;
    po.name = plan[static_cast<std::size_t>(ph)].name;
    po.jobs = phase_jobs;
    po.replied = replied;
    po.refused = refused;
    std::sort(lat.begin(), lat.end());
    po.p50 = percentile(lat, 0.50);
    po.p95 = percentile(lat, 0.95);
    po.p99 = percentile(lat, 0.99);
    po.max = lat.empty() ? 0.0 : lat.back();
    po.sheds = after.sheds - before.sheds;
    po.rejected = after.rejected - before.rejected;
    before = after;
    out.replied += replied;
    out.refused += refused;
    out.lost += lost;
    out.phases.push_back(std::move(po));
    std::cout << "soak[" << cell_name << "]: phase " << out.phases.back().name
              << ": " << phase_jobs << " jobs, p50 " << out.phases.back().p50
              << " ms, p99 " << out.phases.back().p99 << " ms, sheds "
              << out.phases.back().sheds << "\n";
  }
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // A killed shard must respawn, replay its journal and rejoin before the
  // cell can pass; poll the health view until the ring is whole again.
  if (kill_shard >= 0) {
    out.rejoined = false;
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (Clock::now() < deadline) {
      const ClusterCounters now = read_cluster(port);
      out.respawns = now.respawns;
      out.quarantined = now.quarantined;
      if (now.ok && now.live == shards && now.respawns >= 1) {
        out.rejoined = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  const ClusterCounters final_counters = read_cluster(port);
  if (final_counters.ok) {
    out.respawns = final_counters.respawns;
    out.quarantined = final_counters.quarantined;
    out.hedges_won = final_counters.hedges_won;
    out.hedges_cancelled = final_counters.hedges_cancelled;
  }

  try {
    serve::Client tail(port);
    (void)tail.shutdown();
  } catch (const Error&) {
    // wait_server settles it either way.
  }
  out.server_exit = wait_server(*proc, 60000);
  return out;
}

int run_soak_grid(const std::string& serve_bin, const std::string& root,
                  int shards, int jobs, int conns, int kill_shard,
                  std::uint64_t seed, int gen_ops, const std::string& flow,
                  int bits, const std::string& pattern_filter,
                  const std::string& aggressiveness_filter,
                  const std::string& out_path) {
  // The job stream comes from the seeded generator: three shapes -- a plain
  // layered kernel, a loop-carried one, and one with a two-port memory
  // class -- all pure functions of the seed.
  workload::DfgShape plain;
  plain.ops = gen_ops;
  workload::DfgShape loopy = plain;
  loopy.loop_density = 0.15;
  loopy.self_loop_density = 0.5;
  workload::DfgShape memory = plain;
  memory.memories = 2;
  memory.memory_ports = 2;
  memory.memory_access_density = 0.3;

  const core::FlowKind kind = api::flow_from_token(flow);
  std::vector<api::FlowRequestV1> protos;
  int shape_idx = 0;
  for (const workload::DfgShape& shape : {plain, loopy, memory}) {
    api::FlowRequestV1 req;
    req.kind = kind;
    req.dfg = workload::generate(seed + static_cast<std::uint64_t>(shape_idx++),
                                 shape);
    req.params.bits = bits;
    req.params.num_threads = 1;  // the server's engines own the cores
    protos.push_back(std::move(req));
  }

  // The seed also fixes the job -> proto schedule, so a cell's exact
  // request sequence reproduces from the report alone.
  std::vector<int> proto_of_job(static_cast<std::size_t>(jobs));
  {
    Rng schedule_rng(seed);
    for (int j = 0; j < jobs; ++j) {
      proto_of_job[static_cast<std::size_t>(j)] = static_cast<int>(
          schedule_rng.next_below(protos.size()));
    }
  }

  // Calibrate capacity: time the protos synchronously in-process, then
  // scale by the shard count.  Rough is fine -- the aggressiveness
  // multipliers only need "below capacity" and "about 2x" to mean what
  // they say.
  double mean_ms = 0;
  {
    const auto t0 = Clock::now();
    for (const api::FlowRequestV1& req : protos) {
      (void)core::run_flow(req.kind, *req.dfg, req.params);
    }
    mean_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count() /
              static_cast<double>(protos.size());
  }
  const double capacity_jps =
      mean_ms > 0 ? static_cast<double>(shards) * 1000.0 / mean_ms : 100.0;
  std::cout << "soak-grid: calibrated " << mean_ms << " ms/job, capacity ~"
            << capacity_jps << " jobs/s over " << shards << " shards\n";

  std::vector<SoakOutcome> outcomes;
  for (const workload::Pattern p : workload::all_patterns()) {
    if (!pattern_filter.empty() &&
        pattern_filter != workload::pattern_name(p)) {
      continue;
    }
    for (const bool high : {false, true}) {
      const std::string aggr = high ? "high" : "low";
      if (!aggressiveness_filter.empty() && aggressiveness_filter != aggr) {
        continue;
      }
      std::cout << "soak-grid: cell " << workload::pattern_name(p) << "/"
                << aggr << " (" << jobs << " jobs)...\n";
      outcomes.push_back(run_soak_cell(serve_bin, root, p, high, shards, jobs,
                                       conns, kill_shard, protos, proto_of_job,
                                       capacity_jps));
      const SoakOutcome& o = outcomes.back();
      std::cout << "soak-grid: cell " << o.pattern << "/" << o.aggressiveness
                << ": replied " << o.replied << ", refused " << o.refused
                << ", lost " << o.lost << ", duplicates " << o.duplicates
                << ", respawns " << o.respawns << ", rejoined "
                << (o.rejoined ? "yes" : "NO") << ", server_exit "
                << o.server_exit << (o.pass() ? " [pass]" : " [FAIL]")
                << "\n";
    }
  }
  if (outcomes.empty()) {
    std::cerr << "soak-grid: filters matched no cells\n";
    return 1;
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serving");
  w.key("mode").value("soak_grid");
  w.key("seed").value(static_cast<std::int64_t>(seed));
  w.key("gen_ops").value(gen_ops);
  w.key("flow").value(flow);
  w.key("jobs_per_cell").value(jobs);
  w.key("conns").value(conns);
  w.key("shards").value(shards);
  w.key("calibrated_job_ms").value(mean_ms);
  w.key("capacity_jobs_per_s").value(capacity_jps);
  w.key("soak_grid").begin_array();
  bool all_pass = true;
  for (const SoakOutcome& o : outcomes) {
    all_pass = all_pass && o.pass();
    w.begin_object();
    w.key("pattern").value(o.pattern);
    w.key("aggressiveness").value(o.aggressiveness);
    w.key("jobs").value(o.jobs);
    w.key("replied").value(o.replied);
    w.key("refused").value(o.refused);
    w.key("lost").value(o.lost);
    w.key("duplicates").value(o.duplicates);
    if (o.killed_shard >= 0) w.key("killed_shard").value(o.killed_shard);
    w.key("rejoined").value(o.rejoined);
    w.key("respawns").value(o.respawns);
    w.key("quarantined_shards").value(o.quarantined);
    w.key("hedges_won").value(o.hedges_won);
    w.key("hedges_cancelled").value(o.hedges_cancelled);
    w.key("server_exit").value(o.server_exit);
    w.key("wall_ms").value(o.wall_ms);
    w.key("phases").begin_array();
    for (const PhaseOutcome& ph : o.phases) {
      w.begin_object();
      w.key("phase").value(ph.name);
      w.key("jobs").value(ph.jobs);
      w.key("replied").value(ph.replied);
      w.key("refused").value(ph.refused);
      w.key("p50").value(ph.p50);
      w.key("p95").value(ph.p95);
      w.key("p99").value(ph.p99);
      w.key("max").value(ph.max);
      w.key("sheds").value(ph.sheds);
      w.key("rejected").value(ph.rejected);
      w.end_object();
    }
    w.end_array();
    w.key("pass").value(o.pass());
    w.end_object();
  }
  w.end_array();
  w.key("pass").value(all_pass);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::cout << "wrote " << out_path << " ("
            << (all_pass ? "all cells pass" : "FAILURES") << ")\n";
  return all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  int jobs = -1;  // default: 64 load mode, 24 per cell in grid mode
  int conns = 4;
  int bits = 8;
  std::string bench = "mix";
  std::string flow = "ours";
  int kill_shard = -1;
  int kill_after_ms = 0;
  bool shutdown_after = false;
  bool chaos_grid = false;
  bool soak_grid = false;
  std::uint64_t seed = 1;
  int gen_ops = 40;
  int soak_shards = 3;
  std::string pattern_filter;
  std::string aggressiveness_filter;
  std::string serve_bin;
  std::string root = "chaos-grid";
  std::string out_path = "BENCH_serving.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value", ErrorKind::Input);
        return argv[++i];
      };
      if (arg == "--port") port = std::stoi(next());
      else if (arg == "--jobs") jobs = std::stoi(next());
      else if (arg == "--conns") conns = std::stoi(next());
      else if (arg == "--bits") bits = std::stoi(next());
      else if (arg == "--bench") bench = next();
      else if (arg == "--flow") flow = next();
      else if (arg == "--kill-shard") kill_shard = std::stoi(next());
      else if (arg == "--kill-after-ms") kill_after_ms = std::stoi(next());
      else if (arg == "--shutdown") shutdown_after = true;
      else if (arg == "--chaos-grid") chaos_grid = true;
      else if (arg == "--soak-grid") soak_grid = true;
      else if (arg == "--seed") seed = std::stoull(next());
      else if (arg == "--gen-ops") gen_ops = std::stoi(next());
      else if (arg == "--shards") soak_shards = std::stoi(next());
      else if (arg == "--pattern") pattern_filter = next();
      else if (arg == "--aggressiveness") aggressiveness_filter = next();
      else if (arg == "--serve-bin") serve_bin = next();
      else if (arg == "--root") root = next();
      else if (arg == "--out") out_path = next();
      else return usage(argv[0]);
    }
    if (jobs < 0) jobs = chaos_grid ? 24 : (soak_grid ? 48 : 64);
    if (chaos_grid || soak_grid) {
      if (serve_bin.empty() || jobs < 1 || conns < 1) return usage(argv[0]);
    } else if (port < 0 || jobs < 1 || conns < 1) {
      return usage(argv[0]);
    }
    if (soak_grid) {
      // Validate the filters up front so a typo fails loudly, not as an
      // empty grid.
      if (!pattern_filter.empty()) {
        (void)workload::pattern_from_token(pattern_filter);
      }
      if (!aggressiveness_filter.empty() && aggressiveness_filter != "low" &&
          aggressiveness_filter != "high") {
        throw Error("--aggressiveness must be low or high", ErrorKind::Input);
      }
      if (root == "chaos-grid") root = "soak-grid";
      return run_soak_grid(serve_bin, root, soak_shards, jobs, conns,
                           kill_shard, seed, gen_ops, flow, bits,
                           pattern_filter, aggressiveness_filter, out_path);
    }

    const std::vector<std::string> mix =
        bench == "mix" ? benchmarks::benchmark_names()
                       : std::vector<std::string>{bench};
    const core::FlowKind kind = api::flow_from_token(flow);

    // Pre-serialize one request document per benchmark in the mix; each
    // submitted job clones it under a unique name.
    std::vector<api::FlowRequestV1> protos;
    for (const std::string& b : mix) {
      api::FlowRequestV1 req;
      req.kind = kind;
      req.dfg = benchmarks::make_benchmark(b);
      req.params.bits = bits;
      req.params.num_threads = 1;  // the server's engines own the cores
      protos.push_back(std::move(req));
    }

    if (chaos_grid) {
      return run_chaos_grid(serve_bin, root, jobs, conns, protos, out_path);
    }

    std::atomic<int> next_job{0};
    std::mutex samples_mutex;
    std::vector<Sample> samples;
    samples.reserve(static_cast<std::size_t>(jobs));

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        try {
          serve::Client client(port);
          while (true) {
            const int j = next_job.fetch_add(1);
            if (j >= jobs) break;
            api::FlowRequestV1 req = protos[static_cast<std::size_t>(j) % protos.size()];
            req.name = "load-" + std::to_string(j) + "-" +
                       mix[static_cast<std::size_t>(j) % mix.size()];
            const auto start = Clock::now();
            const serve::Client::Response resp = client.submit(req);
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
            Sample s;
            s.latency_ms = ms;
            s.state = resp.ok && resp.result ? resp.result->state : "error";
            std::lock_guard<std::mutex> lock(samples_mutex);
            samples.push_back(std::move(s));
          }
        } catch (const Error& e) {
          std::cerr << "conn " << c << ": " << e.what() << "\n";
        }
      });
    }

    // The chaos hook: kill one shard while the fleet is under load.
    std::thread killer;
    if (kill_shard >= 0) {
      killer = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
        try {
          serve::Client chaos(port);
          if (!chaos.kill_shard(kill_shard)) {
            std::cerr << "kill-shard " << kill_shard << " refused\n";
          }
        } catch (const Error& e) {
          std::cerr << "kill-shard: " << e.what() << "\n";
        }
      });
    }

    for (std::thread& t : threads) t.join();
    if (killer.joinable()) killer.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    serve::Client tail(port);
    const serve::Client::Response health = tail.health();
    if (shutdown_after && !tail.shutdown()) {
      std::cerr << "shutdown not acknowledged\n";
    }

    std::vector<double> lat;
    std::map<std::string, int> states;
    lat.reserve(samples.size());
    for (const Sample& s : samples) {
      lat.push_back(s.latency_ms);
      ++states[s.state];
    }
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (const double v : lat) sum += v;

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("serving");
    w.key("jobs").value(jobs);
    w.key("conns").value(conns);
    w.key("flow").value(flow);
    w.key("mix").begin_array();
    for (const std::string& b : mix) w.value(b);
    w.end_array();
    w.key("completed").value(static_cast<std::int64_t>(samples.size()));
    w.key("wall_ms").value(wall_ms);
    w.key("throughput_jobs_per_s")
        .value(wall_ms > 0 ? 1000.0 * static_cast<double>(samples.size()) / wall_ms
                           : 0.0);
    w.key("latency_ms").begin_object();
    w.key("p50").value(percentile(lat, 0.50));
    w.key("p95").value(percentile(lat, 0.95));
    w.key("p99").value(percentile(lat, 0.99));
    w.key("mean").value(lat.empty() ? 0.0 : sum / static_cast<double>(lat.size()));
    w.key("max").value(lat.empty() ? 0.0 : lat.back());
    w.end_object();
    w.key("states").begin_object();
    for (const auto& [state, count] : states) w.key(state).value(count);
    w.end_object();
    if (kill_shard >= 0) {
      w.key("killed_shard").value(kill_shard);
      w.key("kill_after_ms").value(kill_after_ms);
    }
    w.key("cluster_health");
    if (health.ok && health.health) {
      w.raw_value(util::json_dump(*health.health));
    } else {
      w.null_value();
    }
    w.end_object();

    std::ofstream out(out_path);
    out << w.str() << "\n";
    std::cout << "wrote " << out_path << " (" << samples.size() << "/" << jobs
              << " responses, p50 " << percentile(lat, 0.50) << " ms)\n";
    const int errors = states.count("error") != 0 ? states.at("error") : 0;
    return samples.size() == static_cast<std::size_t>(jobs) && errors == 0 ? 0
                                                                           : 1;
  } catch (const Error& e) {
    std::cerr << "hlts_load: " << e.what() << "\n";
    return 1;
  }
}
