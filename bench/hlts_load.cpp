// hlts_load: load-driving client for hlts_serve.
//
// Opens --conns connections and pumps --jobs synthesis requests through
// them (each connection runs synchronous submits; concurrency = the
// connection count), measuring per-request latency end to end through the
// wire protocol.  Optionally SIGKILLs a shard mid-run (--kill-shard /
// --kill-after-ms) to exercise the supervisor's journal-adoption failover
// under load.  Writes a JSON report (latency percentiles, per-state counts,
// the cluster health snapshot with shed/reject counters) to --out.
//
//   hlts_load --port P [--jobs N] [--conns C] [--bench ex|dct|...|mix]
//             [--flow camad|approach1|approach2|ours] [--bits N]
//             [--kill-shard K --kill-after-ms M] [--shutdown] [--out FILE]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "serve/client.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace hlts;
using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ms = 0;
  std::string state;  ///< FlowResultV1 state, or "error" for protocol errors
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port P [--jobs N] [--conns C] [--bench NAME|mix]"
               " [--flow NAME] [--bits N] [--kill-shard K --kill-after-ms M]"
               " [--shutdown] [--out FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  int jobs = 64;
  int conns = 4;
  int bits = 8;
  std::string bench = "mix";
  std::string flow = "ours";
  int kill_shard = -1;
  int kill_after_ms = 0;
  bool shutdown_after = false;
  std::string out_path = "BENCH_serving.json";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value", ErrorKind::Input);
        return argv[++i];
      };
      if (arg == "--port") port = std::stoi(next());
      else if (arg == "--jobs") jobs = std::stoi(next());
      else if (arg == "--conns") conns = std::stoi(next());
      else if (arg == "--bits") bits = std::stoi(next());
      else if (arg == "--bench") bench = next();
      else if (arg == "--flow") flow = next();
      else if (arg == "--kill-shard") kill_shard = std::stoi(next());
      else if (arg == "--kill-after-ms") kill_after_ms = std::stoi(next());
      else if (arg == "--shutdown") shutdown_after = true;
      else if (arg == "--out") out_path = next();
      else return usage(argv[0]);
    }
    if (port < 0 || jobs < 1 || conns < 1) return usage(argv[0]);

    const std::vector<std::string> mix =
        bench == "mix" ? benchmarks::benchmark_names()
                       : std::vector<std::string>{bench};
    const core::FlowKind kind = api::flow_from_token(flow);

    // Pre-serialize one request document per benchmark in the mix; each
    // submitted job clones it under a unique name.
    std::vector<api::FlowRequestV1> protos;
    for (const std::string& b : mix) {
      api::FlowRequestV1 req;
      req.kind = kind;
      req.dfg = benchmarks::make_benchmark(b);
      req.params.bits = bits;
      req.params.num_threads = 1;  // the server's engines own the cores
      protos.push_back(std::move(req));
    }

    std::atomic<int> next_job{0};
    std::mutex samples_mutex;
    std::vector<Sample> samples;
    samples.reserve(static_cast<std::size_t>(jobs));

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        try {
          serve::Client client(port);
          while (true) {
            const int j = next_job.fetch_add(1);
            if (j >= jobs) break;
            api::FlowRequestV1 req = protos[static_cast<std::size_t>(j) % protos.size()];
            req.name = "load-" + std::to_string(j) + "-" +
                       mix[static_cast<std::size_t>(j) % mix.size()];
            const auto start = Clock::now();
            const serve::Client::Response resp = client.submit(req);
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
            Sample s;
            s.latency_ms = ms;
            s.state = resp.ok && resp.result ? resp.result->state : "error";
            std::lock_guard<std::mutex> lock(samples_mutex);
            samples.push_back(std::move(s));
          }
        } catch (const Error& e) {
          std::cerr << "conn " << c << ": " << e.what() << "\n";
        }
      });
    }

    // The chaos hook: kill one shard while the fleet is under load.
    std::thread killer;
    if (kill_shard >= 0) {
      killer = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
        try {
          serve::Client chaos(port);
          if (!chaos.kill_shard(kill_shard)) {
            std::cerr << "kill-shard " << kill_shard << " refused\n";
          }
        } catch (const Error& e) {
          std::cerr << "kill-shard: " << e.what() << "\n";
        }
      });
    }

    for (std::thread& t : threads) t.join();
    if (killer.joinable()) killer.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    serve::Client tail(port);
    const serve::Client::Response health = tail.health();
    if (shutdown_after && !tail.shutdown()) {
      std::cerr << "shutdown not acknowledged\n";
    }

    std::vector<double> lat;
    std::map<std::string, int> states;
    lat.reserve(samples.size());
    for (const Sample& s : samples) {
      lat.push_back(s.latency_ms);
      ++states[s.state];
    }
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (const double v : lat) sum += v;

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("serving");
    w.key("jobs").value(jobs);
    w.key("conns").value(conns);
    w.key("flow").value(flow);
    w.key("mix").begin_array();
    for (const std::string& b : mix) w.value(b);
    w.end_array();
    w.key("completed").value(static_cast<std::int64_t>(samples.size()));
    w.key("wall_ms").value(wall_ms);
    w.key("throughput_jobs_per_s")
        .value(wall_ms > 0 ? 1000.0 * static_cast<double>(samples.size()) / wall_ms
                           : 0.0);
    w.key("latency_ms").begin_object();
    w.key("p50").value(percentile(lat, 0.50));
    w.key("p95").value(percentile(lat, 0.95));
    w.key("p99").value(percentile(lat, 0.99));
    w.key("mean").value(lat.empty() ? 0.0 : sum / static_cast<double>(lat.size()));
    w.key("max").value(lat.empty() ? 0.0 : lat.back());
    w.end_object();
    w.key("states").begin_object();
    for (const auto& [state, count] : states) w.key(state).value(count);
    w.end_object();
    if (kill_shard >= 0) {
      w.key("killed_shard").value(kill_shard);
      w.key("kill_after_ms").value(kill_after_ms);
    }
    w.key("cluster_health");
    if (health.ok && health.health) {
      w.raw_value(util::json_dump(*health.health));
    } else {
      w.null_value();
    }
    w.end_object();

    std::ofstream out(out_path);
    out << w.str() << "\n";
    std::cout << "wrote " << out_path << " (" << samples.size() << "/" << jobs
              << " responses, p50 " << percentile(lat, 0.50) << " ms)\n";
    const int errors = states.count("error") != 0 ? states.at("error") : 0;
    return samples.size() == static_cast<std::size_t>(jobs) && errors == 0 ? 0
                                                                           : 1;
  } catch (const Error& e) {
    std::cerr << "hlts_load: " << e.what() << "\n";
    return 1;
  }
}
