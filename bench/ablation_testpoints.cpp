// Extension study: test-point insertion (the "improvement" companion of the
// paper's testability-analysis reference, Gu et al. [3]).
//
// For each flow's synthesized design, the analysis ranks registers by their
// controllability/observability balance; the worst N become DFT test points
// (observation taps or test-mode control muxes), and the bench measures
// what they buy in fault coverage and test-generation effort.  A design
// synthesized *for* testability (Ours) should need its test points less
// than the connectivity-driven baseline.
//
//   ./ablation_testpoints [bits] [seeds]
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"
#include "testability/test_points.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  report::Table table({"benchmark", "flow", "test points", "faults",
                       "coverage", "tg (ms)"});
  for (const char* name : {"dct", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    core::FlowParams params = bench::paper_params(bits);
    for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowResult flow = core::run_flow(kind, g, params);
      rtl::RtlDesign design = rtl::RtlDesign::from_synthesis(
          g, flow.schedule, flow.binding, bits);

      // Rank registers; map etpn::RegId to RtlRegId positionally (both
      // follow Binding::alive_regs order).
      etpn::Etpn e = etpn::build_etpn(g, flow.schedule, flow.binding);
      testability::TestabilityAnalysis analysis(e.data_path);
      auto suggestions = testability::suggest_test_points(e, analysis, 4);
      std::vector<etpn::RegId> alive = flow.binding.alive_regs();
      auto rtl_reg_of = [&](etpn::RegId r) {
        for (std::size_t i = 0; i < alive.size(); ++i) {
          if (alive[i] == r) return rtl::RtlRegId{static_cast<uint32_t>(i)};
        }
        throw Error("register not found");
      };

      for (int n_points : {0, 2, 4}) {
        rtl::ElaborateOptions options;
        for (int i = 0; i < n_points && i < static_cast<int>(suggestions.size());
             ++i) {
          options.test_points.push_back(
              {rtl_reg_of(suggestions[i].reg),
               suggestions[i].kind == testability::TestPointKind::Control});
        }
        rtl::Elaboration elab = rtl::elaborate(design, options);
        double coverage = 0, tg = 0;
        std::size_t faults = 0;
        for (int s = 0; s < seeds; ++s) {
          atpg::AtpgOptions ao;
          ao.seed = 1 + static_cast<std::uint64_t>(s) * 7919;
          atpg::AtpgResult r =
              atpg::run_atpg(elab.netlist, design.steps() + 1, ao);
          coverage += r.fault_coverage;
          tg += r.tg_time_ms;
          faults = r.total_faults;
        }
        table.add_row({name, flow.name, report::fmt_int(n_points),
                       report::fmt_int(static_cast<long>(faults)),
                       report::fmt_percent(coverage / seeds),
                       report::fmt_double(tg / seeds, 1)});
      }
    }
    table.add_separator();
  }
  std::cout << "Extension: testability-guided test-point insertion\n"
            << table.render();
  return 0;
}
