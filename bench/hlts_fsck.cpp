// hlts_fsck: offline journal integrity checker.
//
//   hlts_fsck <journal-dir> [--quarantine] [--json FILE]
//
// Scrubs one shard's journal directory with Engine::scrub and prints the
// machine-readable report (JSON) on stdout.  With --quarantine, corrupt
// and foreign files are moved into <dir>/quarantine/ so a subsequent
// recovery sees only trustworthy records.  With --json FILE the report is
// also written to FILE (atomic write).
//
// Exit codes: 0 = clean (every record verifies, no leftovers), 1 = the
// scrub found something (corrupt, orphaned, temp, or unknown files),
// 2 = usage / unreadable directory.
//
// Run it on a *dead* engine's directory -- it takes no locks and must not
// race a live writer.

#include <iostream>
#include <string>

#include "engine/engine.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace hlts;

  std::string dir;
  std::string json_out;
  bool quarantine = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quarantine") {
      quarantine = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "hlts_fsck: --json needs a value\n";
        return 2;
      }
      json_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hlts_fsck: unknown flag '" << arg << "'\n";
      std::cerr << "usage: " << argv[0]
                << " <journal-dir> [--quarantine] [--json FILE]\n";
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::cerr << "hlts_fsck: only one journal directory, got '" << dir
                << "' and '" << arg << "'\n";
      return 2;
    }
  }
  if (dir.empty()) {
    std::cerr << "usage: " << argv[0]
              << " <journal-dir> [--quarantine] [--json FILE]\n";
    return 2;
  }

  try {
    const engine::Journal::ScrubReport report =
        engine::Engine::scrub(dir, quarantine);
    const std::string doc = util::json_dump(report.to_json());
    std::cout << doc << std::endl;
    if (!json_out.empty()) util::fs::write_file_atomic(json_out, doc + "\n");
    return report.clean() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "hlts_fsck: " << e.what() << "\n";
    return 2;
  }
}
