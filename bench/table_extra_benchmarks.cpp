// The paper's §5 states the algorithm was also evaluated on EWF, Paulin and
// Tseng; no tables are given, so this bench produces our results for those
// benchmarks in the same format (8-bit implementations).
//
//   ./table_extra_benchmarks [num_seeds]
#include <cstdlib>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;
  for (const char* name : {"ewf", "paulin", "tseng"}) {
    hlts::dfg::Dfg g = hlts::benchmarks::make_benchmark(name);
    hlts::bench::run_paper_table(
        std::string("Extra benchmark (no paper table): ") + name, g,
        /*include_area=*/true, seeds);
  }
  return 0;
}
