// Regenerates Figure 3: the schedules produced by the integrated synthesis
// algorithm for the Dct and Diffeq benchmarks, with the shared-module and
// shared-register groups.
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "report/schedule_view.hpp"

int main() {
  using namespace hlts;
  for (const char* name : {"dct", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    core::FlowResult ours = core::run_flow(core::FlowKind::Ours, g,
                                           {.bits = 4, .alpha = 2, .beta = 1});
    std::cout << "Figure 3: the schedule for the " << name
              << " benchmark (Ours)\n\n";
    std::cout << report::render_schedule(g, ours.schedule, ours.binding)
              << "\n";
  }
  return 0;
}
