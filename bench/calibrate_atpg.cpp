// Calibration sweep for the bounded-effort ATPG profile.
//
// The paper's comparisons were produced by a 1998 commercial sequential
// ATPG whose effort limits are unknown; this tool sweeps our engine's
// budget knobs (random rounds/sequences, PODEM backtrack limit) and prints
// per-flow fault coverage so the table benches can use a regime where the
// flows differentiate (a saturating budget drives every design to its
// functional-testability limit and the comparison degenerates).
//
//   ./calibrate_atpg [bits] [seeds]
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "benchmarks/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace hlts;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  struct Profile {
    const char* name;
    int rounds, seqs, backtracks;
  };
  const Profile profiles[] = {
      {"tiny", 1, 1, 10},
      {"small", 1, 1, 32},
      {"medium", 2, 2, 64},
      {"large", 6, 4, 200},
  };

  report::Table table(
      {"benchmark", "profile", "CAMAD", "Approach 1", "Approach 2", "Ours"});
  for (const char* name : {"ex", "dct", "diffeq"}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    core::FlowParams params = bench::paper_params(bits);
    std::vector<core::FlowResult> flows = core::run_all_flows(g, params);
    for (const Profile& prof : profiles) {
      atpg::AtpgOptions options;
      options.max_rounds = prof.rounds;
      options.sequences_per_round = prof.seqs;
      options.podem_backtrack_limit = prof.backtracks;
      std::vector<std::string> row{name, prof.name};
      for (const core::FlowResult& flow : flows) {
        bench::TestMetrics m =
            bench::evaluate_testability(g, flow, bits, seeds, options);
        row.push_back(report::fmt_percent(m.coverage));
      }
      table.add_row(std::move(row));
    }
    table.add_separator();
  }
  std::cout << "ATPG budget calibration @ " << bits << " bits, " << seeds
            << " seeds\n"
            << table.render();
  return 0;
}
