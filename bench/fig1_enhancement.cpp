// Regenerates Figure 1: the controllability/observability enhancement
// strategy.  Two compatible operations are merged into one module; the
// merge-sort rescheduler must pick an execution order.  SR2 prefers the
// order that executes the operation with the more controllable operands
// first, which (a) keeps the schedule short and (b) realizes the
// sequential-depth reduction the sharing enables.
#include <iostream>

#include "core/resched.hpp"
#include "etpn/etpn.hpp"
#include "report/schedule_view.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace hlts;

  // A fragment shaped like the paper's Figure 1: N1 consumes only derived
  // values (its result register sits at sequential depth 2 from the primary
  // inputs), N2 consumes a primary input; both are of the same kind and
  // initially scheduled in the same control step, so the merger forces an
  // ordering decision.
  dfg::Dfg g("fig1");
  dfg::VarId a = g.add_input("a");
  dfg::VarId b = g.add_input("b");
  dfg::VarId c = g.add_input("c");
  dfg::VarId d = g.add_input("d");
  g.add_op_new_var("N0a", dfg::OpKind::Mul, {a, b}, "w");
  g.add_op_new_var("N0b", dfg::OpKind::Mul, {c, d}, "u");
  g.add_op_new_var("N1", dfg::OpKind::Sub,
                   {*g.find_var("w"), *g.find_var("u")}, "x");
  g.add_op_new_var("N2", dfg::OpKind::Sub, {a, *g.find_var("u")}, "y");
  g.add_op_new_var("N3", dfg::OpKind::Add,
                   {*g.find_var("x"), *g.find_var("y")}, "s");
  g.mark_output(*g.find_var("s"), /*registered=*/true);
  g.validate();

  sched::Schedule before = sched::asap(g);
  etpn::Binding binding = etpn::Binding::default_binding(g);
  etpn::Etpn before_etpn = etpn::build_etpn(g, before, binding);
  const auto depth_before = before_etpn.data_path.sequential_depth();

  // The paper's Figure 1 quantity: the sequential depth from a controllable
  // register (one loaded from a primary input) to the register holding x.
  auto depth_to_x = [&](const etpn::Etpn& e, const etpn::Binding& b2) {
    const auto dist = e.data_path.register_distances();
    etpn::RegId rx = b2.reg_of(*g.find_var("x"));
    return dist.d_in[e.reg_node[rx].index()];
  };

  std::cout << "Figure 1: controllability/observability enhancement\n\n";
  std::cout << "(a) before the merger (default allocation):\n";
  std::cout << report::render_schedule(g, before, binding);
  std::cout << "sequential depth: max " << depth_before.max_depth << ", total "
            << depth_before.total_depth
            << "; depth from a controllable register to R(x): "
            << depth_to_x(before_etpn, binding) << "\n\n";

  // Merge the two additions into one module; reschedule with SR1/SR2.
  binding.merge_modules(g, binding.module_of(*g.find_op("N1")),
                        binding.module_of(*g.find_op("N2")));
  for (core::OrderStrategy strategy :
       {core::OrderStrategy::Testability, core::OrderStrategy::Plain}) {
    core::ReschedOutcome out = core::reschedule(g, binding, before, strategy);
    if (!out.feasible) {
      std::cout << "infeasible\n";
      continue;
    }
    etpn::Etpn e = etpn::build_etpn(g, out.schedule, binding);
    const auto depth = e.data_path.sequential_depth();
    std::cout << "(b) after merging N1 and N2, "
              << (strategy == core::OrderStrategy::Testability
                      ? "SR1/SR2 order"
                      : "plain order")
              << ":\n";
    std::cout << report::render_schedule(g, out.schedule, binding);
    std::cout << "schedule length: " << out.schedule.length()
              << ", sequential depth: max " << depth.max_depth << ", total "
              << depth.total_depth
              << "; depth from a controllable register to R(x): "
              << depth_to_x(e, binding) << "\n\n";
  }
  return 0;
}
