file(REMOVE_RECURSE
  "CMakeFiles/hlts_cost.dir/cost.cpp.o"
  "CMakeFiles/hlts_cost.dir/cost.cpp.o.d"
  "CMakeFiles/hlts_cost.dir/floorplan.cpp.o"
  "CMakeFiles/hlts_cost.dir/floorplan.cpp.o.d"
  "CMakeFiles/hlts_cost.dir/module_library.cpp.o"
  "CMakeFiles/hlts_cost.dir/module_library.cpp.o.d"
  "libhlts_cost.a"
  "libhlts_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
