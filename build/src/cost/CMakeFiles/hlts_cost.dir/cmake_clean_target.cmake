file(REMOVE_RECURSE
  "libhlts_cost.a"
)
