# Empty compiler generated dependencies file for hlts_cost.
# This may be replaced when dependencies are built.
