file(REMOVE_RECURSE
  "CMakeFiles/hlts_atpg.dir/atpg.cpp.o"
  "CMakeFiles/hlts_atpg.dir/atpg.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/bist.cpp.o"
  "CMakeFiles/hlts_atpg.dir/bist.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/compact.cpp.o"
  "CMakeFiles/hlts_atpg.dir/compact.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/hlts_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/faults.cpp.o"
  "CMakeFiles/hlts_atpg.dir/faults.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/podem.cpp.o"
  "CMakeFiles/hlts_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/simulator.cpp.o"
  "CMakeFiles/hlts_atpg.dir/simulator.cpp.o.d"
  "CMakeFiles/hlts_atpg.dir/testbench.cpp.o"
  "CMakeFiles/hlts_atpg.dir/testbench.cpp.o.d"
  "libhlts_atpg.a"
  "libhlts_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
