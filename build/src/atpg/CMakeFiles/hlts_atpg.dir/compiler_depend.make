# Empty compiler generated dependencies file for hlts_atpg.
# This may be replaced when dependencies are built.
