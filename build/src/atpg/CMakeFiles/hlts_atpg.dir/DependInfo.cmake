
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/atpg.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/atpg.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/atpg.cpp.o.d"
  "/root/repo/src/atpg/bist.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/bist.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/bist.cpp.o.d"
  "/root/repo/src/atpg/compact.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/compact.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/compact.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/fault_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/faults.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/faults.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/faults.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/simulator.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/simulator.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/simulator.cpp.o.d"
  "/root/repo/src/atpg/testbench.cpp" "src/atpg/CMakeFiles/hlts_atpg.dir/testbench.cpp.o" "gcc" "src/atpg/CMakeFiles/hlts_atpg.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gates/CMakeFiles/hlts_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
