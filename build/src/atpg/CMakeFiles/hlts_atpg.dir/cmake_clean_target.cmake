file(REMOVE_RECURSE
  "libhlts_atpg.a"
)
