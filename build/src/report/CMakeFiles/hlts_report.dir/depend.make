# Empty dependencies file for hlts_report.
# This may be replaced when dependencies are built.
