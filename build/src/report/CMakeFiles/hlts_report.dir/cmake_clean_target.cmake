file(REMOVE_RECURSE
  "libhlts_report.a"
)
