file(REMOVE_RECURSE
  "CMakeFiles/hlts_report.dir/schedule_view.cpp.o"
  "CMakeFiles/hlts_report.dir/schedule_view.cpp.o.d"
  "CMakeFiles/hlts_report.dir/table.cpp.o"
  "CMakeFiles/hlts_report.dir/table.cpp.o.d"
  "libhlts_report.a"
  "libhlts_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
