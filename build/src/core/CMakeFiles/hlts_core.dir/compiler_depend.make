# Empty compiler generated dependencies file for hlts_core.
# This may be replaced when dependencies are built.
