file(REMOVE_RECURSE
  "CMakeFiles/hlts_core.dir/flows.cpp.o"
  "CMakeFiles/hlts_core.dir/flows.cpp.o.d"
  "CMakeFiles/hlts_core.dir/resched.cpp.o"
  "CMakeFiles/hlts_core.dir/resched.cpp.o.d"
  "CMakeFiles/hlts_core.dir/synthesis.cpp.o"
  "CMakeFiles/hlts_core.dir/synthesis.cpp.o.d"
  "libhlts_core.a"
  "libhlts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
