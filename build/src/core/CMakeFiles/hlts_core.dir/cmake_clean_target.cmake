file(REMOVE_RECURSE
  "libhlts_core.a"
)
