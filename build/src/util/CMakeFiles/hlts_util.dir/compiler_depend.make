# Empty compiler generated dependencies file for hlts_util.
# This may be replaced when dependencies are built.
