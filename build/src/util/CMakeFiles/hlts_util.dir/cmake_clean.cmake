file(REMOVE_RECURSE
  "CMakeFiles/hlts_util.dir/error.cpp.o"
  "CMakeFiles/hlts_util.dir/error.cpp.o.d"
  "CMakeFiles/hlts_util.dir/log.cpp.o"
  "CMakeFiles/hlts_util.dir/log.cpp.o.d"
  "CMakeFiles/hlts_util.dir/rng.cpp.o"
  "CMakeFiles/hlts_util.dir/rng.cpp.o.d"
  "CMakeFiles/hlts_util.dir/strings.cpp.o"
  "CMakeFiles/hlts_util.dir/strings.cpp.o.d"
  "libhlts_util.a"
  "libhlts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
