file(REMOVE_RECURSE
  "libhlts_util.a"
)
