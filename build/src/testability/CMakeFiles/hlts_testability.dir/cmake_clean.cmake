file(REMOVE_RECURSE
  "CMakeFiles/hlts_testability.dir/balance.cpp.o"
  "CMakeFiles/hlts_testability.dir/balance.cpp.o.d"
  "CMakeFiles/hlts_testability.dir/test_points.cpp.o"
  "CMakeFiles/hlts_testability.dir/test_points.cpp.o.d"
  "CMakeFiles/hlts_testability.dir/testability.cpp.o"
  "CMakeFiles/hlts_testability.dir/testability.cpp.o.d"
  "libhlts_testability.a"
  "libhlts_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
