file(REMOVE_RECURSE
  "libhlts_testability.a"
)
