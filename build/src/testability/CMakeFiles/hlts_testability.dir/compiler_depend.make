# Empty compiler generated dependencies file for hlts_testability.
# This may be replaced when dependencies are built.
