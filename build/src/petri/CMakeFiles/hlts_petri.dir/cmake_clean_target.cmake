file(REMOVE_RECURSE
  "libhlts_petri.a"
)
