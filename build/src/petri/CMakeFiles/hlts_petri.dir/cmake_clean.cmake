file(REMOVE_RECURSE
  "CMakeFiles/hlts_petri.dir/petri.cpp.o"
  "CMakeFiles/hlts_petri.dir/petri.cpp.o.d"
  "libhlts_petri.a"
  "libhlts_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
