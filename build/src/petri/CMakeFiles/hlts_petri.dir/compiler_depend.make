# Empty compiler generated dependencies file for hlts_petri.
# This may be replaced when dependencies are built.
