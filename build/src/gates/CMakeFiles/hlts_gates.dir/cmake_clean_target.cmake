file(REMOVE_RECURSE
  "libhlts_gates.a"
)
