file(REMOVE_RECURSE
  "CMakeFiles/hlts_gates.dir/netlist.cpp.o"
  "CMakeFiles/hlts_gates.dir/netlist.cpp.o.d"
  "CMakeFiles/hlts_gates.dir/simplify.cpp.o"
  "CMakeFiles/hlts_gates.dir/simplify.cpp.o.d"
  "CMakeFiles/hlts_gates.dir/verilog.cpp.o"
  "CMakeFiles/hlts_gates.dir/verilog.cpp.o.d"
  "CMakeFiles/hlts_gates.dir/wordlib.cpp.o"
  "CMakeFiles/hlts_gates.dir/wordlib.cpp.o.d"
  "libhlts_gates.a"
  "libhlts_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
