# Empty dependencies file for hlts_gates.
# This may be replaced when dependencies are built.
