
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/netlist.cpp" "src/gates/CMakeFiles/hlts_gates.dir/netlist.cpp.o" "gcc" "src/gates/CMakeFiles/hlts_gates.dir/netlist.cpp.o.d"
  "/root/repo/src/gates/simplify.cpp" "src/gates/CMakeFiles/hlts_gates.dir/simplify.cpp.o" "gcc" "src/gates/CMakeFiles/hlts_gates.dir/simplify.cpp.o.d"
  "/root/repo/src/gates/verilog.cpp" "src/gates/CMakeFiles/hlts_gates.dir/verilog.cpp.o" "gcc" "src/gates/CMakeFiles/hlts_gates.dir/verilog.cpp.o.d"
  "/root/repo/src/gates/wordlib.cpp" "src/gates/CMakeFiles/hlts_gates.dir/wordlib.cpp.o" "gcc" "src/gates/CMakeFiles/hlts_gates.dir/wordlib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hlts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
