file(REMOVE_RECURSE
  "libhlts_benchmarks.a"
)
