file(REMOVE_RECURSE
  "CMakeFiles/hlts_benchmarks.dir/benchmarks.cpp.o"
  "CMakeFiles/hlts_benchmarks.dir/benchmarks.cpp.o.d"
  "libhlts_benchmarks.a"
  "libhlts_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
