# Empty compiler generated dependencies file for hlts_benchmarks.
# This may be replaced when dependencies are built.
