file(REMOVE_RECURSE
  "libhlts_alloc.a"
)
