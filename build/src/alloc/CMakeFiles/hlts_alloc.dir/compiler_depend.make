# Empty compiler generated dependencies file for hlts_alloc.
# This may be replaced when dependencies are built.
