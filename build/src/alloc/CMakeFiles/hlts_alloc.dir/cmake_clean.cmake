file(REMOVE_RECURSE
  "CMakeFiles/hlts_alloc.dir/alloc.cpp.o"
  "CMakeFiles/hlts_alloc.dir/alloc.cpp.o.d"
  "libhlts_alloc.a"
  "libhlts_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
