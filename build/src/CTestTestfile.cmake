# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("dfg")
subdirs("benchmarks")
subdirs("frontend")
subdirs("petri")
subdirs("etpn")
subdirs("testability")
subdirs("sched")
subdirs("alloc")
subdirs("cost")
subdirs("core")
subdirs("rtl")
subdirs("gates")
subdirs("atpg")
subdirs("report")
