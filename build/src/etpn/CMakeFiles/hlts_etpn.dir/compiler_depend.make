# Empty compiler generated dependencies file for hlts_etpn.
# This may be replaced when dependencies are built.
