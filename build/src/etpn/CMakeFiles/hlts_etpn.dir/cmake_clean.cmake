file(REMOVE_RECURSE
  "CMakeFiles/hlts_etpn.dir/binding.cpp.o"
  "CMakeFiles/hlts_etpn.dir/binding.cpp.o.d"
  "CMakeFiles/hlts_etpn.dir/datapath.cpp.o"
  "CMakeFiles/hlts_etpn.dir/datapath.cpp.o.d"
  "CMakeFiles/hlts_etpn.dir/etpn.cpp.o"
  "CMakeFiles/hlts_etpn.dir/etpn.cpp.o.d"
  "libhlts_etpn.a"
  "libhlts_etpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_etpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
