file(REMOVE_RECURSE
  "libhlts_etpn.a"
)
