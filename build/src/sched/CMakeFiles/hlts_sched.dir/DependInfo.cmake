
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/constraint_graph.cpp" "src/sched/CMakeFiles/hlts_sched.dir/constraint_graph.cpp.o" "gcc" "src/sched/CMakeFiles/hlts_sched.dir/constraint_graph.cpp.o.d"
  "/root/repo/src/sched/fds.cpp" "src/sched/CMakeFiles/hlts_sched.dir/fds.cpp.o" "gcc" "src/sched/CMakeFiles/hlts_sched.dir/fds.cpp.o.d"
  "/root/repo/src/sched/lifetime.cpp" "src/sched/CMakeFiles/hlts_sched.dir/lifetime.cpp.o" "gcc" "src/sched/CMakeFiles/hlts_sched.dir/lifetime.cpp.o.d"
  "/root/repo/src/sched/list_sched.cpp" "src/sched/CMakeFiles/hlts_sched.dir/list_sched.cpp.o" "gcc" "src/sched/CMakeFiles/hlts_sched.dir/list_sched.cpp.o.d"
  "/root/repo/src/sched/mobility_path.cpp" "src/sched/CMakeFiles/hlts_sched.dir/mobility_path.cpp.o" "gcc" "src/sched/CMakeFiles/hlts_sched.dir/mobility_path.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/hlts_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/hlts_sched.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/hlts_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
