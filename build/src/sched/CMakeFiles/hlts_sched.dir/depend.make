# Empty dependencies file for hlts_sched.
# This may be replaced when dependencies are built.
