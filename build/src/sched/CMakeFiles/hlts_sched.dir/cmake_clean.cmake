file(REMOVE_RECURSE
  "CMakeFiles/hlts_sched.dir/constraint_graph.cpp.o"
  "CMakeFiles/hlts_sched.dir/constraint_graph.cpp.o.d"
  "CMakeFiles/hlts_sched.dir/fds.cpp.o"
  "CMakeFiles/hlts_sched.dir/fds.cpp.o.d"
  "CMakeFiles/hlts_sched.dir/lifetime.cpp.o"
  "CMakeFiles/hlts_sched.dir/lifetime.cpp.o.d"
  "CMakeFiles/hlts_sched.dir/list_sched.cpp.o"
  "CMakeFiles/hlts_sched.dir/list_sched.cpp.o.d"
  "CMakeFiles/hlts_sched.dir/mobility_path.cpp.o"
  "CMakeFiles/hlts_sched.dir/mobility_path.cpp.o.d"
  "CMakeFiles/hlts_sched.dir/schedule.cpp.o"
  "CMakeFiles/hlts_sched.dir/schedule.cpp.o.d"
  "libhlts_sched.a"
  "libhlts_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
