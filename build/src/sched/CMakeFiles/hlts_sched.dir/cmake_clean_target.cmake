file(REMOVE_RECURSE
  "libhlts_sched.a"
)
