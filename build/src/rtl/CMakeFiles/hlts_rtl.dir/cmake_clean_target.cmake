file(REMOVE_RECURSE
  "libhlts_rtl.a"
)
