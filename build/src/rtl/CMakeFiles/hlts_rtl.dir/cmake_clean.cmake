file(REMOVE_RECURSE
  "CMakeFiles/hlts_rtl.dir/elaborate.cpp.o"
  "CMakeFiles/hlts_rtl.dir/elaborate.cpp.o.d"
  "CMakeFiles/hlts_rtl.dir/rtl.cpp.o"
  "CMakeFiles/hlts_rtl.dir/rtl.cpp.o.d"
  "libhlts_rtl.a"
  "libhlts_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
