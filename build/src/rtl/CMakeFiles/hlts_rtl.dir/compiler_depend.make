# Empty compiler generated dependencies file for hlts_rtl.
# This may be replaced when dependencies are built.
