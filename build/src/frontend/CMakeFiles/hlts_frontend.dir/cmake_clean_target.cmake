file(REMOVE_RECURSE
  "libhlts_frontend.a"
)
