file(REMOVE_RECURSE
  "CMakeFiles/hlts_frontend.dir/lexer.cpp.o"
  "CMakeFiles/hlts_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/hlts_frontend.dir/parser.cpp.o"
  "CMakeFiles/hlts_frontend.dir/parser.cpp.o.d"
  "libhlts_frontend.a"
  "libhlts_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
