# Empty compiler generated dependencies file for hlts_frontend.
# This may be replaced when dependencies are built.
