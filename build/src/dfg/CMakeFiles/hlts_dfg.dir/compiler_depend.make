# Empty compiler generated dependencies file for hlts_dfg.
# This may be replaced when dependencies are built.
