file(REMOVE_RECURSE
  "libhlts_dfg.a"
)
