file(REMOVE_RECURSE
  "CMakeFiles/hlts_dfg.dir/dfg.cpp.o"
  "CMakeFiles/hlts_dfg.dir/dfg.cpp.o.d"
  "libhlts_dfg.a"
  "libhlts_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlts_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
