# Empty compiler generated dependencies file for hlts_tests.
# This may be replaced when dependencies are built.
