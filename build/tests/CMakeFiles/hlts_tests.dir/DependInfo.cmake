
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_atpg.cpp" "tests/CMakeFiles/hlts_tests.dir/test_atpg.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_atpg.cpp.o.d"
  "/root/repo/tests/test_bist.cpp" "tests/CMakeFiles/hlts_tests.dir/test_bist.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_bist.cpp.o.d"
  "/root/repo/tests/test_compact.cpp" "tests/CMakeFiles/hlts_tests.dir/test_compact.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_compact.cpp.o.d"
  "/root/repo/tests/test_cost.cpp" "tests/CMakeFiles/hlts_tests.dir/test_cost.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_cost.cpp.o.d"
  "/root/repo/tests/test_dfg.cpp" "tests/CMakeFiles/hlts_tests.dir/test_dfg.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_dfg.cpp.o.d"
  "/root/repo/tests/test_etpn.cpp" "tests/CMakeFiles/hlts_tests.dir/test_etpn.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_etpn.cpp.o.d"
  "/root/repo/tests/test_flows.cpp" "tests/CMakeFiles/hlts_tests.dir/test_flows.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_flows.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/hlts_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_gates.cpp" "tests/CMakeFiles/hlts_tests.dir/test_gates.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_gates.cpp.o.d"
  "/root/repo/tests/test_petri.cpp" "tests/CMakeFiles/hlts_tests.dir/test_petri.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_petri.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hlts_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_random_designs.cpp" "tests/CMakeFiles/hlts_tests.dir/test_random_designs.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_random_designs.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/hlts_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rtl.cpp" "tests/CMakeFiles/hlts_tests.dir/test_rtl.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_rtl.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/hlts_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_simplify.cpp" "tests/CMakeFiles/hlts_tests.dir/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_simplify.cpp.o.d"
  "/root/repo/tests/test_synthesis.cpp" "tests/CMakeFiles/hlts_tests.dir/test_synthesis.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_synthesis.cpp.o.d"
  "/root/repo/tests/test_test_points.cpp" "tests/CMakeFiles/hlts_tests.dir/test_test_points.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_test_points.cpp.o.d"
  "/root/repo/tests/test_testability.cpp" "tests/CMakeFiles/hlts_tests.dir/test_testability.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_testability.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/hlts_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/hlts_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_verilog.cpp" "tests/CMakeFiles/hlts_tests.dir/test_verilog.cpp.o" "gcc" "tests/CMakeFiles/hlts_tests.dir/test_verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hlts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/hlts_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/hlts_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/hlts_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hlts_report.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hlts_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/testability/CMakeFiles/hlts_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/hlts_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/hlts_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/hlts_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/etpn/CMakeFiles/hlts_etpn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hlts_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/hlts_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/hlts_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
