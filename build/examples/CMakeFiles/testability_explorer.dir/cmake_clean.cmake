file(REMOVE_RECURSE
  "CMakeFiles/testability_explorer.dir/testability_explorer.cpp.o"
  "CMakeFiles/testability_explorer.dir/testability_explorer.cpp.o.d"
  "testability_explorer"
  "testability_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testability_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
