# Empty dependencies file for testability_explorer.
# This may be replaced when dependencies are built.
