# Empty dependencies file for custom_spec.
# This may be replaced when dependencies are built.
