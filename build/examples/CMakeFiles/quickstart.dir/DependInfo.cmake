
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hlts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/hlts_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/testability/CMakeFiles/hlts_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/hlts_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/hlts_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/etpn/CMakeFiles/hlts_etpn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hlts_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/hlts_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/hlts_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
