# Empty compiler generated dependencies file for table2_dct.
# This may be replaced when dependencies are built.
