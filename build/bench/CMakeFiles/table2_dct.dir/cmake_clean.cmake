file(REMOVE_RECURSE
  "CMakeFiles/table2_dct.dir/table2_dct.cpp.o"
  "CMakeFiles/table2_dct.dir/table2_dct.cpp.o.d"
  "table2_dct"
  "table2_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
