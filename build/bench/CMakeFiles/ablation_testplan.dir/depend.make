# Empty dependencies file for ablation_testplan.
# This may be replaced when dependencies are built.
