file(REMOVE_RECURSE
  "CMakeFiles/ablation_testplan.dir/ablation_testplan.cpp.o"
  "CMakeFiles/ablation_testplan.dir/ablation_testplan.cpp.o.d"
  "ablation_testplan"
  "ablation_testplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_testplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
