# Empty dependencies file for calibrate_atpg.
# This may be replaced when dependencies are built.
