file(REMOVE_RECURSE
  "CMakeFiles/calibrate_atpg.dir/calibrate_atpg.cpp.o"
  "CMakeFiles/calibrate_atpg.dir/calibrate_atpg.cpp.o.d"
  "calibrate_atpg"
  "calibrate_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
