# Empty dependencies file for ablation_bist.
# This may be replaced when dependencies are built.
