file(REMOVE_RECURSE
  "CMakeFiles/ablation_bist.dir/ablation_bist.cpp.o"
  "CMakeFiles/ablation_bist.dir/ablation_bist.cpp.o.d"
  "ablation_bist"
  "ablation_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
