# Empty compiler generated dependencies file for table3_diffeq.
# This may be replaced when dependencies are built.
