file(REMOVE_RECURSE
  "CMakeFiles/table3_diffeq.dir/table3_diffeq.cpp.o"
  "CMakeFiles/table3_diffeq.dir/table3_diffeq.cpp.o.d"
  "table3_diffeq"
  "table3_diffeq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_diffeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
