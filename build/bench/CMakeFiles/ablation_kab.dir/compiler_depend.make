# Empty compiler generated dependencies file for ablation_kab.
# This may be replaced when dependencies are built.
