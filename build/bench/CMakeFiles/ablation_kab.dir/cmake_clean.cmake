file(REMOVE_RECURSE
  "CMakeFiles/ablation_kab.dir/ablation_kab.cpp.o"
  "CMakeFiles/ablation_kab.dir/ablation_kab.cpp.o.d"
  "ablation_kab"
  "ablation_kab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
