# Empty dependencies file for ablation_testpoints.
# This may be replaced when dependencies are built.
