file(REMOVE_RECURSE
  "CMakeFiles/ablation_testpoints.dir/ablation_testpoints.cpp.o"
  "CMakeFiles/ablation_testpoints.dir/ablation_testpoints.cpp.o.d"
  "ablation_testpoints"
  "ablation_testpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_testpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
