file(REMOVE_RECURSE
  "CMakeFiles/fig1_enhancement.dir/fig1_enhancement.cpp.o"
  "CMakeFiles/fig1_enhancement.dir/fig1_enhancement.cpp.o.d"
  "fig1_enhancement"
  "fig1_enhancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_enhancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
