# Empty compiler generated dependencies file for fig1_enhancement.
# This may be replaced when dependencies are built.
