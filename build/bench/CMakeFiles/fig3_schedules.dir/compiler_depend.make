# Empty compiler generated dependencies file for fig3_schedules.
# This may be replaced when dependencies are built.
