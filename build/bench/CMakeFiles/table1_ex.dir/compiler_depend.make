# Empty compiler generated dependencies file for table1_ex.
# This may be replaced when dependencies are built.
