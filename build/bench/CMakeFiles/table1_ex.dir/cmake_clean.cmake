file(REMOVE_RECURSE
  "CMakeFiles/table1_ex.dir/table1_ex.cpp.o"
  "CMakeFiles/table1_ex.dir/table1_ex.cpp.o.d"
  "table1_ex"
  "table1_ex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
