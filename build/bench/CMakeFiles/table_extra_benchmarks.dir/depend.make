# Empty dependencies file for table_extra_benchmarks.
# This may be replaced when dependencies are built.
