file(REMOVE_RECURSE
  "CMakeFiles/table_extra_benchmarks.dir/table_extra_benchmarks.cpp.o"
  "CMakeFiles/table_extra_benchmarks.dir/table_extra_benchmarks.cpp.o.d"
  "table_extra_benchmarks"
  "table_extra_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_extra_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
