// Unit tests for the data-flow graph and the six benchmark constructions.
#include <gtest/gtest.h>

#include <map>

#include "benchmarks/benchmarks.hpp"
#include "dfg/dfg.hpp"

namespace hlts {
namespace {

using dfg::Dfg;
using dfg::OpKind;

TEST(Dfg, BuildAndQuery) {
  Dfg g("t");
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  auto op = g.add_op_new_var("n1", OpKind::Add, {a, b}, "s");
  g.mark_output(*g.find_var("s"));
  g.validate();

  EXPECT_EQ(g.num_ops(), 1u);
  EXPECT_EQ(g.num_vars(), 3u);
  EXPECT_TRUE(g.preds(op).empty());
  EXPECT_TRUE(g.succs(op).empty());
  EXPECT_EQ(g.primary_inputs().size(), 2u);
  EXPECT_EQ(g.primary_outputs().size(), 1u);
  EXPECT_EQ(g.critical_path_ops(), 1);
}

TEST(Dfg, RejectsDuplicateNames) {
  Dfg g;
  g.add_input("a");
  EXPECT_THROW(g.add_input("a"), Error);
  EXPECT_THROW(g.add_variable("a"), Error);
}

TEST(Dfg, RejectsArityMismatch) {
  Dfg g;
  auto a = g.add_input("a");
  auto out = g.add_variable("out");
  EXPECT_THROW(g.add_op("n", OpKind::Add, {a}, out), Error);
}

TEST(Dfg, RejectsDoubleDefinition) {
  Dfg g;
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  auto out = g.add_variable("out");
  g.add_op("n1", OpKind::Add, {a, b}, out);
  EXPECT_THROW(g.add_op("n2", OpKind::Sub, {a, b}, out), Error);
}

TEST(Dfg, TopoOrderRespectsDependences) {
  Dfg g = benchmarks::make_ewf();
  auto order = g.topo_order();
  std::map<std::uint32_t, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].value()] = i;
  for (dfg::OpId op : g.op_ids()) {
    for (dfg::OpId p : g.preds(op)) {
      EXPECT_LT(pos[p.value()], pos[op.value()]);
    }
  }
}

TEST(Dfg, NeedsRegisterRules) {
  Dfg g;
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  g.add_op_new_var("n1", OpKind::Mul, {a, b}, "t");
  auto t = *g.find_var("t");
  g.add_op_new_var("n2", OpKind::Add, {t, a}, "u");
  auto u = *g.find_var("u");
  g.add_op_new_var("n3", OpKind::Sub, {t, b}, "v");
  auto v = *g.find_var("v");
  g.mark_output(u, /*registered=*/true);
  g.mark_output(v, /*registered=*/false);
  EXPECT_TRUE(g.needs_register(a));   // primary input
  EXPECT_TRUE(g.needs_register(t));   // consumed
  EXPECT_TRUE(g.needs_register(u));   // registered output
  EXPECT_FALSE(g.needs_register(v));  // port-direct output
}

TEST(Dfg, DotOutputMentionsEverything) {
  Dfg g = benchmarks::make_ex();
  std::string dot = g.to_dot();
  EXPECT_NE(dot.find("N21"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(OpKindHelpers, ArityAndSymbols) {
  EXPECT_EQ(dfg::op_arity(OpKind::Not), 1);
  EXPECT_EQ(dfg::op_arity(OpKind::Mul), 2);
  EXPECT_STREQ(dfg::op_symbol(OpKind::Mul), "*");
  EXPECT_STREQ(dfg::op_name(OpKind::Less), "less");
  EXPECT_TRUE(dfg::op_is_comparison(OpKind::Less));
  EXPECT_FALSE(dfg::op_is_comparison(OpKind::Add));
  EXPECT_TRUE(dfg::ops_module_compatible(OpKind::Add, OpKind::Sub));
  EXPECT_TRUE(dfg::ops_module_compatible(OpKind::Add, OpKind::Less));
  EXPECT_FALSE(dfg::ops_module_compatible(OpKind::Add, OpKind::Mul));
}

/// The paper's benchmark operation mixes.
struct BenchSpec {
  std::string name;
  std::size_t ops;
  std::map<OpKind, int> mix;
};

class BenchmarkShape : public ::testing::TestWithParam<BenchSpec> {};

TEST_P(BenchmarkShape, HasPaperOperationMix) {
  const BenchSpec& spec = GetParam();
  Dfg g = benchmarks::make_benchmark(spec.name);
  g.validate();
  EXPECT_EQ(g.num_ops(), spec.ops);
  std::map<OpKind, int> mix;
  for (dfg::OpId op : g.op_ids()) mix[g.op(op).kind]++;
  for (const auto& [kind, count] : spec.mix) {
    EXPECT_EQ(mix[kind], count) << spec.name << " " << dfg::op_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperMixes, BenchmarkShape,
    ::testing::Values(
        BenchSpec{"ex", 8, {{OpKind::Mul, 4}, {OpKind::Sub, 3}, {OpKind::Add, 1}}},
        BenchSpec{"dct",
                  13,
                  {{OpKind::Mul, 5}, {OpKind::Add, 6}, {OpKind::Sub, 2}}},
        BenchSpec{"diffeq",
                  11,
                  {{OpKind::Mul, 6},
                   {OpKind::Add, 2},
                   {OpKind::Sub, 2},
                   {OpKind::Less, 1}}},
        BenchSpec{"ewf", 34, {{OpKind::Add, 26}, {OpKind::Mul, 8}}},
        BenchSpec{"paulin",
                  8,
                  {{OpKind::Mul, 4}, {OpKind::Add, 2}, {OpKind::Sub, 2}}},
        BenchSpec{"tseng",
                  8,
                  {{OpKind::Add, 3},
                   {OpKind::Sub, 1},
                   {OpKind::Mul, 1},
                   {OpKind::Div, 1},
                   {OpKind::Or, 1},
                   {OpKind::And, 1}}}),
    [](const auto& info) { return info.param.name; });

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(benchmarks::make_benchmark("nope"), Error);
}

TEST(Benchmarks, PaperNodeNamesPresent) {
  Dfg ex = benchmarks::make_ex();
  for (const char* n : {"N21", "N22", "N24", "N25", "N27", "N28", "N29", "N30"}) {
    EXPECT_TRUE(ex.find_op(n).has_value()) << n;
  }
  Dfg dct = benchmarks::make_dct();
  for (const char* n : {"N27", "N31", "N33", "N35", "N38", "N40", "N44"}) {
    EXPECT_TRUE(dct.find_op(n).has_value()) << n;
  }
  for (const char* v : {"p1", "p4", "q2", "q4"}) {
    EXPECT_TRUE(dct.find_var(v).has_value()) << v;
  }
  Dfg diffeq = benchmarks::make_diffeq();
  for (const char* v : {"x", "y", "u", "dx", "a", "3", "u1", "x1", "y1"}) {
    EXPECT_TRUE(diffeq.find_var(v).has_value()) << v;
  }
}

}  // namespace
}  // namespace hlts
