// SAT backend suite (label: sat): unit tests of the in-repo CDCL solver,
// CNF-vs-simulator property tests over random sequential gate cones, and
// the deterministic-backend equivalence matrix over the six benchmarks.
//
// The load-bearing property is soundness-by-construction: TimeFrameCnf
// encodes the *same* dual-rail plane equations the wide fault simulator
// evaluates, so any SAT model is a concrete simulation run and every
// extracted test must be confirmed by the simulator -- not "usually", but
// for every model of every cone.  The property tests check exactly that;
// the equivalence matrix then checks the orchestrator-level consequences
// (hybrid coverage >= timeframe, zero unconfirmed SAT detections, aborted
// PODEM targets resolved by SAT).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "atpg/backend.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/sat_backend.hpp"
#include "atpg/simulator.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "gates/cnf.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"
#include "util/cdcl.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

using gates::GateId;
using gates::GateKind;
using gates::Netlist;
using util::cdcl::Lit;
using util::cdcl::mk_lit;
using util::cdcl::Solver;
using util::cdcl::Status;
using util::cdcl::Value;
using util::cdcl::Var;

// ---------------------------------------------------------------------------
// CDCL solver units
// ---------------------------------------------------------------------------

TEST(Cdcl, UnitPropagationChains) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  const Var d = s.new_var();
  ASSERT_TRUE(s.add_clause(~mk_lit(a), mk_lit(b)));  // a -> b
  ASSERT_TRUE(s.add_clause(~mk_lit(b), mk_lit(c)));  // b -> c
  ASSERT_TRUE(s.add_clause(~mk_lit(c), mk_lit(d)));  // c -> d
  ASSERT_TRUE(s.add_clause(mk_lit(a)));              // root unit
  // The whole chain is implied at decision level 0.
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.value(a), Value::True);
  EXPECT_EQ(s.value(b), Value::True);
  EXPECT_EQ(s.value(c), Value::True);
  EXPECT_EQ(s.value(d), Value::True);
  EXPECT_EQ(s.stats().decisions, 0u);
}

TEST(Cdcl, EmptyAndContradictoryClausesMakeTheSolverInconsistent) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause(mk_lit(a)));
  EXPECT_FALSE(s.add_clause(mk_lit(a, true)));
  EXPECT_TRUE(s.inconsistent());
  EXPECT_EQ(s.solve(), Status::Unsat);
}

/// Pigeonhole PHP(n, n-1): n pigeons into n-1 holes, classic UNSAT family
/// that is impossible without conflict learning doing real work.
void add_php(Solver& s, int pigeons, int holes,
             std::vector<std::vector<Var>>* vars = nullptr) {
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h) some.push_back(mk_lit(p[i][h]));
    s.add_clause(some);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.add_clause(mk_lit(p[i][h], true), mk_lit(p[j][h], true));
  if (vars != nullptr) *vars = std::move(p);
}

TEST(Cdcl, LearnedClausesRefutePigeonhole) {
  Solver s;
  add_php(s, 5, 4);
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().learned, 0u);
  // Refuted at the formula level: no assumptions were involved.
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(Cdcl, ModelsSatisfyEveryProblemClause) {
  // A satisfiable instance hard enough to force conflicts and learning:
  // PHP(5, 5) (a permutation exists) plus side constraints.
  Solver s;
  std::vector<std::vector<Var>> p;
  add_php(s, 5, 5, &p);
  s.add_clause(mk_lit(p[0][0], true));
  s.add_clause(mk_lit(p[1][1], true));
  ASSERT_EQ(s.solve(), Status::Sat);
  // Every problem clause (flat arena walk) must hold under the model, and
  // so must the root-trail units the simplifier stripped out of clauses.
  std::size_t checked = 0;
  s.for_each_problem_clause([&](const int* codes, int size) {
    bool sat = false;
    for (int i = 0; i < size; ++i) {
      Lit l;
      l.x = codes[i];
      if (s.model_true(l)) sat = true;
    }
    EXPECT_TRUE(sat) << "clause " << checked << " falsified by the model";
    ++checked;
  });
  EXPECT_GT(checked, 0u);
  for (const Lit l : s.root_literals()) EXPECT_TRUE(s.model_true(l));
}

TEST(Cdcl, FailedAssumptionsFormAnUnsatCore) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();  // irrelevant to the conflict
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause(~mk_lit(a), mk_lit(x)));        // a -> x
  ASSERT_TRUE(s.add_clause(~mk_lit(b), mk_lit(x, true)));  // b -> ~x
  // {a, b, c} is inconsistent; the core must be within {a, b}.
  ASSERT_EQ(s.solve({mk_lit(a), mk_lit(b), mk_lit(c)}), Status::Unsat);
  const std::vector<Lit> core = s.failed_assumptions();
  ASSERT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_TRUE(l == mk_lit(a) || l == mk_lit(b))
        << "core pulled in an irrelevant assumption";
  }
  // Core sanity: the core alone is still Unsat, and dropping the conflict
  // (either side) restores Sat -- on the same incremental solver.
  EXPECT_EQ(s.solve(core), Status::Unsat);
  EXPECT_EQ(s.solve({mk_lit(a), mk_lit(c)}), Status::Sat);
  EXPECT_TRUE(s.model_true(mk_lit(x)));
  EXPECT_EQ(s.solve({mk_lit(b), mk_lit(c)}), Status::Sat);
  EXPECT_FALSE(s.model_true(mk_lit(x)));
}

TEST(Cdcl, ConflictBudgetReturnsUnknown) {
  Solver s;
  add_php(s, 8, 7);
  EXPECT_EQ(s.solve({}, /*conflict_budget=*/10), Status::Unknown);
  // Unbounded, the same solver finishes the refutation.
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Cdcl, DeterministicAcrossRuns) {
  auto run = [] {
    Solver s;
    add_php(s, 7, 6);
    EXPECT_EQ(s.solve(), Status::Unsat);
    return s.stats().conflicts;
  };
  const auto first = run();
  EXPECT_EQ(run(), first);
}

// ---------------------------------------------------------------------------
// Random sequential cones: CNF model <=> simulator agreement, frame by frame
// ---------------------------------------------------------------------------

/// A random sequential netlist: `num_inputs` PIs, `num_dffs` flip-flops fed
/// from random signals, `num_gates` combinational gates over the growing
/// signal pool.  Structurally acyclic in the combinational part by
/// construction (gates only reference earlier signals).
Netlist random_netlist(Rng& rng, int num_inputs, int num_gates,
                       int num_dffs) {
  Netlist nl("random");
  std::vector<GateId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  }
  std::vector<GateId> dffs;
  for (int i = 0; i < num_dffs; ++i) {
    dffs.push_back(nl.add_dff("r" + std::to_string(i)));
    pool.push_back(dffs.back());
  }
  const GateKind kinds[] = {GateKind::And,  GateKind::Or,  GateKind::Nand,
                            GateKind::Nor,  GateKind::Xor, GateKind::Xnor,
                            GateKind::Mux,  GateKind::Not, GateKind::Buf};
  auto pick = [&] { return pool[static_cast<std::size_t>(rng.next_below(pool.size()))]; };
  for (int i = 0; i < num_gates; ++i) {
    const GateKind kind = kinds[static_cast<std::size_t>(rng.next_below(std::size(kinds)))];
    std::vector<GateId> in;
    // gate_arity returns -1 for the variadic kinds (>= 2 inputs required).
    int arity = gates::gate_arity(kind);
    if (arity < 0) arity = 2 + static_cast<int>(rng.next_below(2));
    for (int a = 0; a < arity; ++a) in.push_back(pick());
    pool.push_back(nl.add_gate(kind, in));
  }
  for (GateId d : dffs) nl.connect_dff(d, pick());
  // Observe the tail of the pool so fault cones reach primary outputs.
  for (int i = 0; i < 3 && i < static_cast<int>(pool.size()); ++i) {
    nl.add_output(pool[pool.size() - 1 - i], "o" + std::to_string(i));
  }
  return nl;
}

TEST(CnfProperty, GoodMachineModelsAgreeWithSimulatorEveryFrame) {
  Rng rng(2026);
  int sat_cases = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const Netlist nl = random_netlist(rng, 4, 24, 3);
    const int frames = 3;
    gates::TimeFrameCnf cnf(nl, frames);
    // Constrain a random gate to a random binary value in a random frame.
    const GateId target{static_cast<GateId::underlying_type>(
        rng.next_below(nl.num_gates()))};
    const int frame = static_cast<int>(rng.next_below(frames));
    const Lit goal = rng.next_bool() ? cnf.one_lit(target, frame)
                                     : cnf.zero_lit(target, frame);
    if (cnf.solver().solve({goal}) != Status::Sat) continue;
    ++sat_cases;
    const atpg::TestSequence seq = cnf.extract_sequence();
    ASSERT_EQ(seq.size(), static_cast<std::size_t>(frames));
    // Replay the model's PI assignment on the real simulator: every gate's
    // three-valued planes must match the model in every frame.
    atpg::ParallelSimulator sim(nl);
    sim.reset_state();
    for (int t = 0; t < frames; ++t) {
      sim.step(seq[t]);
      for (GateId g : nl.gate_ids()) {
        const bool model_one = cnf.solver().model_true(cnf.one_lit(g, t));
        const bool model_zero = cnf.solver().model_true(cnf.zero_lit(g, t));
        EXPECT_EQ(model_one, (sim.plane_one(g) & 1) != 0)
            << "one-plane mismatch at gate " << g.index() << " frame " << t
            << " (trial " << trial << ")";
        EXPECT_EQ(model_zero, (sim.plane_zero(g) & 1) != 0)
            << "zero-plane mismatch at gate " << g.index() << " frame " << t
            << " (trial " << trial << ")";
      }
    }
  }
  // The constraint is satisfiable most of the time; guard against the test
  // silently degenerating into a no-op.
  EXPECT_GE(sat_cases, 10);
}

TEST(CnfProperty, EverySatTestIsConfirmedByTheFaultSimulator) {
  Rng rng(4096);
  int detected = 0;
  int untestable = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist nl = random_netlist(rng, 4, 20, 3);
    const int frames = 4;
    gates::TimeFrameCnf cnf(nl, frames);
    atpg::FaultSimulator fsim(nl, /*num_threads=*/1);
    const atpg::FaultUniverse universe = atpg::FaultUniverse::collapsed(nl);
    for (const atpg::Fault& f : universe.faults()) {
      const Lit act = cnf.add_fault(f.gate, f.stuck_at_one);
      const Status st = cnf.solver().solve({act});
      if (st == Status::Sat) {
        ++detected;
        const atpg::TestSequence seq = cnf.extract_sequence();
        std::vector<atpg::Fault> remaining{f};
        fsim.drop_detected(seq, remaining);
        EXPECT_TRUE(remaining.empty())
            << "SAT test for " << atpg::fault_name(nl, f)
            << " not confirmed by the simulator (trial " << trial << ")";
      } else {
        ASSERT_EQ(st, Status::Unsat);
        ++untestable;
      }
      cnf.retire_fault(act);
    }
  }
  // Random cones must exercise both outcomes for the property to bite.
  EXPECT_GT(detected, 100);
  EXPECT_GT(untestable, 0);
}

// ---------------------------------------------------------------------------
// Backend seam
// ---------------------------------------------------------------------------

TEST(Backend, RegistryListsBothBackendsAndRejectsUnknownNames) {
  const std::vector<std::string> names = atpg::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "timeframe"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sat"), names.end());
  Netlist nl;
  nl.add_output(nl.add_input("a"), "o");
  EXPECT_THROW((void)atpg::make_backend("no-such-backend", nl, {}),
               hlts::Error);
}

TEST(Backend, SatBackendClassifiesEveryFaultOnASmallSequentialDesign) {
  // Sequential cone with a reset: DFF accumulator XOR-fed from an input.
  Netlist nl;
  const GateId reset = nl.add_input("reset");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId acc = nl.add_dff("acc");
  const GateId x = nl.add_gate(GateKind::Xor, {a, acc});
  const GateId m = nl.add_gate(GateKind::Mux, {reset, x, nl.const0()});
  nl.connect_dff(acc, m);
  const GateId an = nl.add_gate(GateKind::And, {acc, b});
  nl.add_output(an, "out");

  atpg::BackendConfig config;
  config.frames = 3;
  auto backend = atpg::make_backend(atpg::BackendKind::Sat, nl, config);
  atpg::FaultSimulator fsim(nl, /*num_threads=*/1);
  const atpg::FaultUniverse universe = atpg::FaultUniverse::collapsed(nl);
  for (const atpg::Fault& f : universe.faults()) {
    const atpg::BackendResult r = backend->generate(f);
    ASSERT_NE(r.status, atpg::BackendStatus::Aborted)
        << atpg::fault_name(nl, f);
    if (r.status == atpg::BackendStatus::Detected) {
      std::vector<atpg::Fault> remaining{f};
      fsim.drop_detected(r.sequence, remaining);
      EXPECT_TRUE(remaining.empty()) << atpg::fault_name(nl, f);
    }
  }
  const atpg::BackendStats& st = backend->stats();
  EXPECT_EQ(st.targets, universe.size());
  EXPECT_EQ(st.detected + st.untestable, universe.size());
  EXPECT_GT(st.detected, 0u);
  // reset/sa0 keeps the faulty accumulator X forever -> proved untestable.
  EXPECT_GT(st.untestable, 0u);
}

TEST(Backend, DimacsDumpCarriesHeaderVarMapAndAssumption) {
  Netlist nl("dumpme");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateKind::And, {a, b});
  nl.add_output(g, "o");
  gates::TimeFrameCnf cnf(nl, 2);
  const Lit act = cnf.add_fault(g, /*stuck_at_one=*/false);
  std::ostringstream os;
  cnf.dump_dimacs(os, act);
  const std::string text = os.str();
  EXPECT_NE(text.find("c hlts time-frame CNF: netlist=dumpme frames=2"),
            std::string::npos);
  EXPECT_NE(text.find("c assume "), std::string::npos);
  EXPECT_NE(text.find("c v 1 "), std::string::npos);
  EXPECT_NE(text.find("p cnf "), std::string::npos);
  // Var count in the header must match the solver.
  std::istringstream is(text.substr(text.find("p cnf ") + 6));
  int vars = 0;
  is >> vars;
  EXPECT_EQ(vars, cnf.solver().num_vars());
}

TEST(Backend, DumpCnfDirWritesOneDimacsFilePerTarget) {
  Netlist nl("tiny");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateKind::And, {a, b});
  nl.add_output(g, "o");
  atpg::BackendConfig config;
  config.frames = 1;
  config.dump_cnf_dir = testing::TempDir() + "hlts_dump_cnf";
  std::filesystem::create_directories(config.dump_cnf_dir);
  auto backend = atpg::make_backend(atpg::BackendKind::Sat, nl, config);
  (void)backend->generate({g, false});
  // The backend replaces path-hostile characters ('/', '#', ' ') with '_'.
  std::string leaf = "tiny-" + atpg::fault_name(nl, {g, false}) + ".cnf";
  for (char& c : leaf) {
    if (c == '/' || c == '#' || c == ' ') c = '_';
  }
  std::ifstream in(config.dump_cnf_dir + "/" + leaf);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("c hlts time-frame CNF", 0), 0u);
}

// ---------------------------------------------------------------------------
// Backend equivalence matrix over the six benchmarks
// ---------------------------------------------------------------------------

struct BenchDesign {
  gates::Netlist netlist;
  int period = 0;
};

/// Synthesized + elaborated benchmark designs, built once per process (the
/// matrix tests below share them).
const BenchDesign& bench_design(const std::string& name) {
  static std::map<std::string, BenchDesign>* cache =
      new std::map<std::string, BenchDesign>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    const dfg::Dfg g = benchmarks::make_benchmark(name);
    const core::FlowResult flow =
        core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
    const rtl::RtlDesign design =
        rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 8);
    rtl::Elaboration elab = rtl::elaborate(design);
    it = cache
             ->emplace(name,
                       BenchDesign{std::move(elab.netlist),
                                   design.steps() + 1})
             .first;
  }
  return it->second;
}

const char* const kBenchmarks[] = {"ex",  "dct",    "diffeq",
                                   "ewf", "paulin", "tseng"};

bool contains(const std::vector<atpg::Fault>& v, const atpg::Fault& f) {
  return std::find(v.begin(), v.end(), f) != v.end();
}

TEST(BackendEquivalence, HybridCoverageDominatesTimeframeOnEveryBenchmark) {
  std::size_t timeframe_aborted_total = 0;
  std::size_t newly_resolved_total = 0;
  for (const char* name : kBenchmarks) {
    const BenchDesign& d = bench_design(name);
    atpg::AtpgOptions options;
    // A modest per-fault budget keeps the six-benchmark matrix affordable;
    // the hybrid rescue pass (PODEM retry on budget aborts) is what makes
    // dominance hold at this setting.
    options.sat_conflict_budget = 2000;
    options.backend = "timeframe";
    const atpg::AtpgResult tf =
        atpg::run_atpg(d.netlist, d.period, options);
    options.backend = "hybrid";
    const atpg::AtpgResult hy =
        atpg::run_atpg(d.netlist, d.period, options);

    // The random phases are bit-identical (same seed, same RNG stream), so
    // any difference is the deterministic backend's doing.
    EXPECT_EQ(hy.detected_random, tf.detected_random) << name;
    // The acceptance bar: hybrid (random + SAT) covers at least what the
    // timeframe mode (random + PODEM) covers, per benchmark.
    EXPECT_GE(hy.fault_coverage, tf.fault_coverage) << name;
    EXPECT_GE(hy.fault_efficiency, tf.fault_efficiency) << name;
    // Every SAT candidate is a concrete simulation run by construction;
    // the orchestrator must never see an unconfirmed SAT detection.
    EXPECT_EQ(hy.unconfirmed, 0u) << name;
    EXPECT_EQ(hy.backend, "hybrid") << name;
    EXPECT_EQ(tf.backend, "timeframe") << name;

    // Fault-by-fault: a target the PODEM search aborted is "previously
    // unresolvable"; count how many the SAT backend settles (either a
    // simulator-confirmed detection or an untestability proof).
    timeframe_aborted_total += tf.aborted_faults.size();
    for (const atpg::Fault& f : tf.aborted_faults) {
      const bool now_detected = !contains(hy.undetected, f);
      const bool now_untestable = contains(hy.untestable_faults, f);
      if (now_detected || now_untestable) ++newly_resolved_total;
    }
  }
  // The bounded PODEM search must leave hard sequential faults on the
  // table, and SAT must resolve at least one of them -- the headline
  // improvement this backend exists for.
  EXPECT_GT(timeframe_aborted_total, 0u);
  EXPECT_GT(newly_resolved_total, 0u);
  std::printf("[matrix] timeframe aborted %zu target(s); SAT resolved %zu\n",
              timeframe_aborted_total, newly_resolved_total);
}

TEST(BackendEquivalence, DetectedSetsBitIdenticalAcrossWidthsAndThreads) {
  // The hybrid test set re-simulated under every packet width x thread
  // combination must detect the *same* fault set -- the wide simulator's
  // bit-identity contract extended over SAT-generated sequences.
  for (const char* name : kBenchmarks) {
    const BenchDesign& d = bench_design(name);
    atpg::AtpgOptions options;
    options.backend = "hybrid";
    // Bit-identity across widths/threads is independent of search effort;
    // a small budget keeps this six-benchmark sweep fast.
    options.sat_conflict_budget = 400;
    const atpg::AtpgResult hy =
        atpg::run_atpg(d.netlist, d.period, options);
    const atpg::FaultUniverse universe =
        atpg::FaultUniverse::collapsed(d.netlist);
    const std::vector<atpg::Fault>& faults = universe.faults();

    auto detected_set = [&](int threads, int width) {
      atpg::FaultSimulator fsim(d.netlist, threads, width);
      std::set<std::size_t> out;
      for (const atpg::TestSequence& seq : hy.test_set) {
        for (std::size_t idx : fsim.detected_by(seq, faults)) out.insert(idx);
      }
      return out;
    };
    const std::set<std::size_t> reference = detected_set(1, 64);
    EXPECT_EQ(reference.size(), hy.detected()) << name;
    for (const int threads : {1, 4}) {
      for (const int width : {64, 256, 512}) {
        if (threads == 1 && width == 64) continue;
        EXPECT_EQ(detected_set(threads, width), reference)
            << name << " threads=" << threads << " width=" << width;
      }
    }
  }
}

TEST(BackendEquivalence, HybridIsDeterministicAcrossRuns) {
  const BenchDesign& d = bench_design("ex");
  atpg::AtpgOptions options;
  options.backend = "hybrid";
  options.sat_conflict_budget = 2000;
  const atpg::AtpgResult a = atpg::run_atpg(d.netlist, d.period, options);
  const atpg::AtpgResult b = atpg::run_atpg(d.netlist, d.period, options);
  EXPECT_EQ(a.test_set, b.test_set);
  EXPECT_EQ(a.fault_coverage, b.fault_coverage);
  EXPECT_EQ(a.untestable_proved, b.untestable_proved);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.backend_stats.sat_conflicts, b.backend_stats.sat_conflicts);
}

}  // namespace
}  // namespace hlts
