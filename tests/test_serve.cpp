// Serving-layer tests (`ctest -L serve`): the lattice algebra behind the
// cluster health view, deterministic shard routing, wire-protocol framing
// and tag correlation (including adversarial bytes), the versioned api DTO
// round-trips with forward-compatibility guarantees, the env-knob registry
// (value round-trip and README-table audit), and the fork-based
// supervisor/failover soak -- a real Server with forked shard workers, a
// SIGKILLed worker mid-load, and the assertion that every job still gets
// exactly one result bit-identical to a serial core::run_flow.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "serve/client.hpp"
#include "serve/health.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/supervisor.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/knobs.hpp"
#include "util/lattice.hpp"
#include "util/socket.hpp"

namespace hlts {
namespace {

core::FlowParams paper_params() {
  core::FlowParams p;
  p.k = 5;
  p.alpha = 2;
  p.beta = 1;
  p.num_threads = 1;
  return p;
}

// ---------------------------------------------------------------------------
// Lattice algebra.  The cluster view's correctness rests on merge being
// associative, commutative and idempotent; exercise each law directly.

TEST(Lattice, BoolJoinIsOrAndIdempotent) {
  util::BoolLattice a;
  EXPECT_FALSE(a.reveal());  // bottom
  a.merge(false);
  EXPECT_FALSE(a.reveal());
  a.merge(true);
  EXPECT_TRUE(a.reveal());
  a.merge(false);  // monotone: can never move back down
  EXPECT_TRUE(a.reveal());
  a.merge(true);  // idempotent
  EXPECT_TRUE(a.reveal());
}

TEST(Lattice, MaxJoinLawsHoldOverPermutations) {
  const std::vector<std::int64_t> values = {3, 7, 7, 1, 5, 7, 2};
  // Any delivery order, with any duplication, converges to the same join.
  for (std::size_t start = 0; start < values.size(); ++start) {
    util::MaxLattice<std::int64_t> m{0};
    for (std::size_t i = 0; i < values.size(); ++i) {
      m.merge(values[(start + i) % values.size()]);
    }
    m.merge(values[start]);  // replay a stale element
    EXPECT_EQ(m.reveal(), 7);
  }
}

TEST(Lattice, MinJoinBottomIsMax) {
  util::MinLattice<int> m;
  EXPECT_EQ(m.reveal(), std::numeric_limits<int>::max());
  m.merge(9);
  m.merge(12);
  m.merge(9);
  EXPECT_EQ(m.reveal(), 9);
}

TEST(Lattice, MergeInEqualsElementwiseMerge) {
  util::MaxLattice<int> a{4};
  util::MaxLattice<int> b{6};
  a.merge_in(b);
  EXPECT_EQ(a.reveal(), 6);
  b.merge_in(a);  // commutes: both sides converge
  EXPECT_EQ(b.reveal(), 6);
}

TEST(Lattice, MapLatticeSumIsIdempotentUnderRedelivery) {
  util::ShardCounterLattice counters;
  counters.merge_at(0, std::uint64_t{10});
  counters.merge_at(1, std::uint64_t{5});
  counters.merge_at(0, std::uint64_t{12});  // shard 0 advanced
  EXPECT_EQ(counters.sum(), 17u);
  // Re-delivering every stale snapshot changes nothing: this is the exact
  // property that lets the supervisor fold health frames without dedup.
  counters.merge_at(0, std::uint64_t{10});
  counters.merge_at(1, std::uint64_t{5});
  EXPECT_EQ(counters.sum(), 17u);

  util::ShardCounterLattice replica;
  replica.merge_at(1, std::uint64_t{6});
  counters.merge_in(replica);  // pointwise join across replicas
  EXPECT_EQ(counters.sum(), 18u);
}

TEST(Lattice, ShardCountersFoldHealthSnapshotsCommutatively) {
  api::HealthV1 early;
  early.shard = 2;
  early.submitted = 4;
  early.recovered = 0;
  early.journaling = false;
  api::HealthV1 late = early;
  late.submitted = 9;
  late.recovered = 2;
  late.journaling = true;

  serve::ShardCounters fwd;
  fwd.merge(early);
  fwd.merge(late);
  serve::ShardCounters rev;
  rev.merge(late);
  rev.merge(early);  // stale after fresh: must not regress
  for (const serve::ShardCounters* c : {&fwd, &rev}) {
    EXPECT_EQ(c->submitted.reveal(), 9);
    EXPECT_EQ(c->recovered.reveal(), 2);
    EXPECT_TRUE(c->journaling.reveal());
  }
}

TEST(Lattice, ClusterViewTotalsSurviveSnapshotReplay) {
  serve::ClusterView view;
  api::HealthV1 s0;
  s0.shard = 0;
  s0.submitted = 7;
  s0.queue_depth = 3;
  api::HealthV1 s1;
  s1.shard = 1;
  s1.submitted = 5;
  s1.queue_depth = 1;
  view.observe(s0);
  view.observe(s1);
  view.observe(s0);  // replayed frame
  const util::JsonValue doc = view.to_json({{0, true}, {1, true}});
  const util::JsonValue* cluster = doc.find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("submitted"), 12);
  EXPECT_EQ(cluster->get_int("queue_depth"), 4);
  EXPECT_EQ(cluster->get_int("live_shards"), 2);
  ASSERT_NE(doc.find("shards"), nullptr);
  EXPECT_EQ(doc.find("shards")->as_array().size(), 2u);
}

// ---------------------------------------------------------------------------
// Shard routing.

TEST(ShardRouter, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors: the hash is part of the wire contract
  // (the same name must route identically on every platform).
  EXPECT_EQ(serve::fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(serve::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(serve::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ShardRouter, RouteIsDeterministicAndLandsOnLiveShards) {
  serve::ShardRouter router(4);
  serve::ShardRouter twin(4);
  for (int i = 0; i < 64; ++i) {
    const std::string name = "job-" + std::to_string(i);
    const int shard = router.route(name);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, twin.route(name)) << name;
    EXPECT_EQ(shard, router.route(name)) << "route must be stateless";
  }
}

TEST(ShardRouter, DeadShardsLeaveTheCandidateSet) {
  serve::ShardRouter router(3);
  router.mark_dead(1);
  EXPECT_EQ(router.live_count(), 2);
  for (int i = 0; i < 64; ++i) {
    const int shard = router.route("job-" + std::to_string(i));
    EXPECT_TRUE(shard == 0 || shard == 2);
  }
  router.mark_dead(0);
  router.mark_dead(2);
  EXPECT_EQ(router.live_count(), 0);
  EXPECT_EQ(router.route("anything"), -1);
}

TEST(ShardRouter, PeerOfWalksTheRingOverLiveShards) {
  serve::ShardRouter router(4);
  EXPECT_EQ(router.peer_of(1), 2);
  EXPECT_EQ(router.peer_of(3), 0);  // wraps
  router.mark_dead(2);
  EXPECT_EQ(router.peer_of(1), 3);  // skips the dead shard
  router.mark_dead(3);
  router.mark_dead(0);
  router.mark_dead(1);
  EXPECT_EQ(router.peer_of(1), -1);  // nobody left
}

// ---------------------------------------------------------------------------
// Wire protocol: tag embedding and frame shapes, including garbage input.

TEST(Protocol, EmbedSplitTagRoundTrips) {
  const std::string tagged = serve::proto::embed_tag(42, "dct/ours");
  EXPECT_EQ(tagged, "t42|dct/ours");
  const auto split = serve::proto::split_tag(tagged);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->tag, 42u);
  EXPECT_EQ(split->name, "dct/ours");
}

TEST(Protocol, SplitTagKeepsPipesInClientNames) {
  // A client name may itself contain '|' (or even look tagged): only the
  // first prefix is the supervisor's.
  const auto split = serve::proto::split_tag(serve::proto::embed_tag(7, "a|b"));
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->name, "a|b");
  const auto nested =
      serve::proto::split_tag(serve::proto::embed_tag(1, "t99|x"));
  ASSERT_TRUE(nested.has_value());
  EXPECT_EQ(nested->tag, 1u);
  EXPECT_EQ(nested->name, "t99|x");
}

TEST(Protocol, SplitTagRejectsGarbage) {
  for (const char* bad : {"", "plain-name", "t|missing-digits", "tx9|y",
                          "t12", "12|no-t-prefix", "|", "t-3|negative"}) {
    EXPECT_FALSE(serve::proto::split_tag(bad).has_value()) << bad;
  }
}

TEST(Protocol, FramesAreParseableNdjsonWithExpectedFields) {
  const std::string line = serve::proto::health_line(9);
  ASSERT_EQ(line.back(), '\n');
  const auto doc = util::json_parse(line.substr(0, line.size() - 1));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("op"), "health");
  EXPECT_EQ(doc->get_int("tag"), 9);

  const std::string adopted = serve::proto::adopted_frame(3, {5, 6});
  const auto adoc = util::json_parse(adopted.substr(0, adopted.size() - 1));
  ASSERT_TRUE(adoc.has_value());
  EXPECT_EQ(adoc->get_string("kind"), "adopted");
  ASSERT_NE(adoc->find("tags"), nullptr);
  EXPECT_EQ(adoc->find("tags")->as_array().size(), 2u);

  const std::string err = serve::proto::error_line("boom \"quoted\"");
  const auto edoc = util::json_parse(err.substr(0, err.size() - 1));
  ASSERT_TRUE(edoc.has_value());
  EXPECT_FALSE(edoc->get_bool("ok", true));
  EXPECT_EQ(edoc->get_string("error"), "boom \"quoted\"");
}

// ---------------------------------------------------------------------------
// Versioned DTOs: round-trips, forward compatibility, strictness.

util::JsonValue with_extra_member(const util::JsonValue& doc) {
  util::JsonValue::Object obj = doc.as_object();
  obj.emplace_back("an_unknown_future_field", util::JsonValue::make_int(42));
  obj.emplace_back("another", util::JsonValue::make_string("ignored"));
  return util::JsonValue::make_object(std::move(obj));
}

TEST(ApiDto, FlowRequestRoundTripsThroughJson) {
  api::FlowRequestV1 req;
  req.name = "ex/ours";
  req.kind = core::FlowKind::Ours;
  req.dfg = benchmarks::make_benchmark("ex");
  req.params = paper_params();
  req.timeout_ms = 1500;
  const api::FlowRequestV1 back = api::FlowRequestV1::from_json(req.to_json());
  EXPECT_EQ(back.schema_version, api::kSchemaVersion);
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.timeout_ms, 1500);
  ASSERT_TRUE(back.dfg.has_value());
  EXPECT_EQ(back.dfg->num_ops(), req.dfg->num_ops());
  EXPECT_EQ(back.params.k, req.params.k);
}

TEST(ApiDto, FlowResultRoundTripPreservesEveryContractField) {
  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  const core::FlowResult r =
      core::run_flow(core::FlowKind::Ours, g, paper_params());
  api::FlowResultV1 dto = api::FlowResultV1::from_result("ex/ours", r);
  dto.state = "succeeded";  // from_result leaves the engine-owned state empty
  const api::FlowResultV1 back = api::FlowResultV1::from_json(dto.to_json());
  EXPECT_TRUE(dto.design_identical(back));
  EXPECT_EQ(back.name, "ex/ours");
  EXPECT_TRUE(back.has_design);
  EXPECT_EQ(back.iterations, dto.iterations);
  // And the comparison has teeth: perturb one schedule step.
  api::FlowResultV1 tampered = back;
  ASSERT_FALSE(tampered.schedule_steps.empty());
  tampered.schedule_steps[0] += 1;
  EXPECT_FALSE(dto.design_identical(tampered));
}

TEST(ApiDto, UnknownFieldsAreIgnoredForForwardCompatibility) {
  api::FlowRequestV1 req;
  req.name = "fc";
  req.dfg = benchmarks::make_benchmark("ex");
  req.params = paper_params();
  const api::FlowRequestV1 back =
      api::FlowRequestV1::from_json(with_extra_member(req.to_json()));
  EXPECT_EQ(back.name, "fc");

  api::HealthV1 h;
  h.shard = 3;
  h.submitted = 11;
  const api::HealthV1 hback = api::HealthV1::from_json(with_extra_member(h.to_json()));
  EXPECT_EQ(hback.shard, 3);
  EXPECT_EQ(hback.submitted, 11);
}

TEST(ApiDto, NewerSchemaVersionIsAcceptedOlderIsNot) {
  api::HealthV1 h;
  h.shard = 1;
  util::JsonValue::Object obj = h.to_json().as_object();
  for (auto& [key, value] : obj) {
    if (key == "schema_version") value = util::JsonValue::make_int(2);
  }
  const api::HealthV1 newer =
      api::HealthV1::from_json(util::JsonValue::make_object(obj));
  EXPECT_EQ(newer.shard, 1);

  for (auto& [key, value] : obj) {
    if (key == "schema_version") value = util::JsonValue::make_int(0);
  }
  EXPECT_THROW(
      (void)api::HealthV1::from_json(util::JsonValue::make_object(obj)),
      Error);
}

TEST(ApiDto, MalformedDocumentsThrowInputErrors) {
  EXPECT_THROW((void)api::FlowRequestV1::from_json(util::JsonValue::make_int(4)),
               Error);
  // A request must carry exactly one of dfg / source.
  util::JsonValue::Object obj;
  obj.emplace_back("schema_version", util::JsonValue::make_int(1));
  obj.emplace_back("name", util::JsonValue::make_string("x"));
  obj.emplace_back("kind", util::JsonValue::make_string("ours"));
  EXPECT_THROW((void)api::FlowRequestV1::from_json(
                   util::JsonValue::make_object(obj)),
               Error);
  EXPECT_THROW((void)api::flow_from_token("no-such-flow"), Error);
}

// ---------------------------------------------------------------------------
// Env-knob registry.

/// RAII environment override for knob tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Knobs, ServeOptionsRoundTripThroughRegistryAndJson) {
  ScopedEnv shards("HLTS_SERVE_SHARDS", "7");
  ScopedEnv bytes("HLTS_SERVE_MAX_REQUEST_BYTES", "1024");
  const serve::ServerOptions opts = serve::ServerOptions::from_env({});
  EXPECT_EQ(opts.shards, 7);
  EXPECT_EQ(opts.max_request_bytes, 1024u);

  // The registry snapshot must agree with what the options consumed.
  const util::JsonValue snap = util::knobs::to_json();
  const util::JsonValue* knobs = snap.find("knobs");
  ASSERT_NE(knobs, nullptr);
  bool seen = false;
  for (const util::JsonValue& entry : knobs->as_array()) {
    if (entry.get_string("name") != "HLTS_SERVE_SHARDS") continue;
    seen = true;
    EXPECT_EQ(entry.get_string("value"), "7");
    EXPECT_EQ(entry.get_string("kind"), "int");
  }
  EXPECT_TRUE(seen);
}

TEST(Knobs, MalformedServeKnobIsAConfigurationError) {
  ScopedEnv bad("HLTS_SERVE_SHARDS", "a-few");
  EXPECT_THROW((void)serve::ServerOptions::from_env({}), Error);
}

TEST(Knobs, ReadmeKnobTableMatchesRegistry) {
  // Every registered knob must have a row in README's `HLTS_*` table and
  // vice versa: the registry is the source of truth, the README is the
  // audited mirror.
  std::ifstream readme(std::string(HLTS_SOURCE_DIR) + "/README.md");
  ASSERT_TRUE(readme.is_open());
  std::set<std::string> documented;
  std::string line;
  while (std::getline(readme, line)) {
    if (line.rfind("| `HLTS_", 0) != 0) continue;
    const std::size_t end = line.find('`', 3);
    ASSERT_NE(end, std::string::npos) << line;
    documented.insert(line.substr(3, end - 3));
  }
  std::set<std::string> registered;
  for (const util::knobs::Knob& k : util::knobs::registry()) {
    registered.insert(k.name);
  }
  EXPECT_EQ(documented, registered);
}

// ---------------------------------------------------------------------------
// The live server: fork-based supervisor + shard workers, driven over TCP.

/// Fresh scratch tree under TMPDIR, recursively removed on scope exit (the
/// server populates shard-<k>/ journal subdirectories inside it).
struct TempRoot {
  std::string path;
  TempRoot() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/hlts_serve_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : tmpl;
  }
  ~TempRoot() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

class ServeFixture : public ::testing::Test {
 protected:
  /// Builds a server rooted in a fresh temp journal dir and drives run() on
  /// a fixture thread.  Must be called before any other thread exists in
  /// the test process (the ctor forks).  The fixture owns the server: the
  /// run() thread is joined *before* the Server is destroyed (destroying a
  /// Server concurrently with run() is undefined, as for any object).
  serve::Server& make_server(int shards,
                             std::size_t max_request_bytes = 4u << 20) {
    serve::ServerOptions opts;
    opts.shards = shards;
    opts.port = 0;
    opts.max_request_bytes = max_request_bytes;
    opts.journal_root = root_.path;
    server_ = std::make_unique<serve::Server>(std::move(opts));
    runner_ = std::thread([s = server_.get()] { s->run(); });
    return *server_;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();  // no-op after orderly shutdown
    if (runner_.joinable()) runner_.join();
    server_.reset();
  }

  TempRoot root_;
  std::unique_ptr<serve::Server> server_;
  std::thread runner_;
};

api::FlowRequestV1 make_request(const std::string& name,
                                const std::string& bench,
                                core::FlowKind kind) {
  api::FlowRequestV1 req;
  req.name = name;
  req.kind = kind;
  req.dfg = benchmarks::make_benchmark(bench);
  req.params = paper_params();
  return req;
}

TEST_F(ServeFixture, SubmitReturnsBitIdenticalResults) {
  serve::Server& server = make_server(2);
  serve::Client client(server.port());
  for (const char* bench : {"ex", "diffeq"}) {
    const auto resp = client.submit(
        make_request(std::string(bench) + "/ours", bench, core::FlowKind::Ours));
    ASSERT_TRUE(resp.ok) << resp.error;
    ASSERT_TRUE(resp.result.has_value());
    EXPECT_EQ(resp.result->state, "succeeded");
    const core::FlowResult serial = core::run_flow(
        core::FlowKind::Ours, benchmarks::make_benchmark(bench), paper_params());
    const api::FlowResultV1 expected =
        api::FlowResultV1::from_result(resp.result->name, serial);
    EXPECT_TRUE(expected.design_identical(*resp.result)) << bench;
  }
  EXPECT_TRUE(client.shutdown());
}

TEST_F(ServeFixture, HealthAggregatesAllShards) {
  serve::Server& server = make_server(3);
  serve::Client client(server.port());
  const auto first = client.submit(
      make_request("warm/ours", "ex", core::FlowKind::Ours));
  ASSERT_TRUE(first.ok) << first.error;
  const auto health = client.health();
  ASSERT_TRUE(health.ok) << health.error;
  ASSERT_TRUE(health.health.has_value());
  const util::JsonValue* cluster = health.health->find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("live_shards"), 3);
  EXPECT_GE(cluster->get_int("submitted"), 1);
  ASSERT_NE(health.health->find("shards"), nullptr);
  EXPECT_EQ(health.health->find("shards")->as_array().size(), 3u);
  EXPECT_TRUE(client.shutdown());
}

TEST_F(ServeFixture, HttpHealthProbeAnswers200) {
  serve::Server& server = make_server(2);
  util::net::Fd fd = util::net::connect_local(server.port());
  util::net::write_all(fd.get(), "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
  // Raw read to EOF: the JSON body is not newline-terminated, so a line
  // reader would drop it as a torn trailing write.
  std::string body;
  char chunk[4096];
  for (ssize_t n = 0; (n = ::read(fd.get(), chunk, sizeof chunk)) > 0;) {
    body.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(body.find("\"live_shards\":2"), std::string::npos);
  serve::Client client(server.port());
  EXPECT_TRUE(client.shutdown());
}

TEST_F(ServeFixture, GarbageAndUnknownOpsGetErrorRepliesNotCrashes) {
  serve::Server& server = make_server(2);
  util::net::Fd fd = util::net::connect_local(server.port());
  util::net::LineReader reader(fd.get(), 1u << 20);
  for (const char* bad :
       {"not json at all", "[1,2,3]", "{\"op\":\"no-such-op\"}",
        "{\"op\":\"submit\"}", "{\"op\":\"submit\",\"request\":{\"schema_version\":1}}",
        "{\"op\":\"kill\",\"shard\":99}"}) {
    util::net::write_all(fd.get(), std::string(bad) + "\n");
    const auto line = reader.read_line();
    ASSERT_TRUE(line.has_value()) << bad;
    const auto doc = util::json_parse(*line);
    ASSERT_TRUE(doc.has_value()) << *line;
    EXPECT_FALSE(doc->get_bool("ok", true)) << bad;
    EXPECT_FALSE(doc->get_string("error").empty()) << bad;
  }
  // The connection survived all of it; a real request still works.
  serve::Client client(server.port());
  const auto resp =
      client.submit(make_request("after/ours", "ex", core::FlowKind::Ours));
  EXPECT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(client.shutdown());
}

TEST_F(ServeFixture, OversizedRequestLineIsRefusedAndConnectionClosed) {
  serve::Server& server = make_server(2, /*max_request_bytes=*/4096);
  util::net::Fd fd = util::net::connect_local(server.port());
  util::net::LineReader reader(fd.get(), 1u << 20);
  const std::string huge(8192, 'x');
  util::net::write_all(fd.get(), huge + "\n");
  const auto line = reader.read_line();
  ASSERT_TRUE(line.has_value());
  const auto doc = util::json_parse(*line);
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->get_bool("ok", true));
  EXPECT_FALSE(reader.read_line().has_value());  // server hung up
  serve::Client client(server.port());
  EXPECT_TRUE(client.shutdown());
}

// The tentpole soak: SIGKILL a worker while jobs are in flight.  Zero jobs
// may be lost (every submit gets exactly one response) and every result
// must stay bit-identical to a serial run -- the journal-adoption failover
// in action.
TEST_F(ServeFixture, KilledWorkerLosesNoJobsAndResultsStayBitIdentical) {
  serve::Server& server = make_server(3);

  const std::vector<std::string> benches = {"ex", "dct", "diffeq", "ewf"};
  const std::vector<core::FlowKind> kinds = {
      core::FlowKind::Camad, core::FlowKind::Approach1,
      core::FlowKind::Approach2, core::FlowKind::Ours};
  std::vector<api::FlowRequestV1> grid;
  for (const std::string& bench : benches) {
    for (core::FlowKind kind : kinds) {
      grid.push_back(make_request(
          bench + "/" + api::flow_token(kind) + "/soak", bench, kind));
    }
  }

  serve::Client pipe(server.port());
  for (const api::FlowRequestV1& req : grid) pipe.send_submit(req);

  // Kill a shard while the grid is in flight.  A separate connection so the
  // kill cannot queue behind the pipelined submits.
  serve::Client chaos(server.port());
  ASSERT_TRUE(chaos.kill_shard(1));

  std::map<std::string, api::FlowResultV1> results;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto resp = pipe.read_response();
    ASSERT_TRUE(resp.has_value()) << "connection died after " << i;
    ASSERT_TRUE(resp->ok) << resp->error;
    ASSERT_TRUE(resp->result.has_value());
    EXPECT_TRUE(results.emplace(resp->result->name, *resp->result).second)
        << "duplicate result for " << resp->result->name;
  }
  ASSERT_EQ(results.size(), grid.size()) << "lost jobs";

  int checked = 0;
  for (const api::FlowRequestV1& req : grid) {
    const auto it = results.find(req.name);
    ASSERT_NE(it, results.end()) << req.name;
    ASSERT_EQ(it->second.state, "succeeded") << req.name << ": "
                                             << it->second.error;
    const core::FlowResult serial =
        core::run_flow(req.kind, *req.dfg, paper_params());
    EXPECT_TRUE(api::FlowResultV1::from_result(req.name, serial)
                    .design_identical(it->second))
        << req.name;
    ++checked;
  }
  EXPECT_EQ(checked, static_cast<int>(grid.size()));

  // The cluster kept exact books through the failover.
  const auto health = chaos.health();
  ASSERT_TRUE(health.ok);
  const util::JsonValue* cluster = health.health->find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("live_shards"), 2);
  EXPECT_TRUE(chaos.shutdown());
}

TEST_F(ServeFixture, SubmitsAfterFailoverStillRouteAndSucceed) {
  serve::Server& server = make_server(2);
  serve::Client client(server.port());
  ASSERT_TRUE(client.kill_shard(0));
  // Give the reaper a beat; then the surviving shard must take everything.
  const auto resp = client.submit(
      make_request("post-failover/ours", "ex", core::FlowKind::Ours));
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.result->state, "succeeded");
  const auto health = client.health();
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.health->find("cluster")->get_int("live_shards"), 1);
  EXPECT_TRUE(client.shutdown());
}

}  // namespace
}  // namespace hlts
