// Unit tests for the gate-level netlist and the word-level constructors:
// exhaustive 4-bit arithmetic checks against reference integer math, run
// through the three-valued simulator.
#include <gtest/gtest.h>

#include "atpg/simulator.hpp"
#include "gates/netlist.hpp"
#include "util/error.hpp"
#include "gates/wordlib.hpp"

namespace hlts {
namespace {

using gates::GateId;
using gates::GateKind;
using gates::Netlist;
using gates::Word;

TEST(Netlist, BasicConstruction) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId x = nl.add_gate(GateKind::And, {a, b});
  nl.add_output(x, "o");
  nl.validate();
  EXPECT_EQ(nl.stats().primary_inputs, 2u);
  EXPECT_EQ(nl.stats().primary_outputs, 1u);
  EXPECT_EQ(nl.stats().combinational, 1u);  // the AND gate (pads not counted)
}

TEST(Netlist, DffMustBeConnected) {
  Netlist nl;
  GateId d = nl.add_dff("r");
  EXPECT_THROW(nl.validate(), Error);
  GateId a = nl.add_input("a");
  nl.connect_dff(d, a);
  nl.add_output(d, "o");
  nl.validate();
  EXPECT_EQ(nl.stats().flip_flops, 1u);
}

TEST(Netlist, CombinationalCycleRejected) {
  Netlist nl;
  GateId a = nl.add_input("a");
  // Build a cycle through two ANDs using a placeholder trick: create the
  // gates, then form the loop via a DFF-free path.
  GateId g1 = nl.add_gate(GateKind::And, {a, a});
  GateId g2 = nl.add_gate(GateKind::And, {g1, a});
  // Manually force a cycle is impossible through the public API (inputs are
  // fixed at construction), which is itself the invariant: appending can
  // only reference existing gates, so combinational cycles cannot form.
  nl.add_output(g2, "o");
  nl.validate();
  SUCCEED();
}

TEST(Netlist, DffBreaksCycles) {
  Netlist nl;
  GateId d = nl.add_dff("state");
  GateId inv = nl.add_gate(GateKind::Not, {d});
  nl.connect_dff(d, inv);  // classic toggle flop: legal
  nl.add_output(d, "o");
  nl.validate();
  EXPECT_EQ(nl.levelized().size(), 2u);  // not + output
}

/// Evaluates a combinational word circuit on concrete inputs via the
/// simulator (no DFFs involved).
class WordFixture : public ::testing::Test {
 protected:
  std::uint64_t run(Netlist& nl, const Word& out, std::uint64_t a,
                    std::uint64_t b, const Word& wa, const Word& wb) {
    atpg::ParallelSimulator sim(nl);
    atpg::TestVector v(nl.inputs().size(), false);
    auto set_word = [&](const Word& w, std::uint64_t value) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        // inputs() order matches creation order.
        for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
          if (nl.inputs()[k] == w[i]) v[k] = (value >> i) & 1;
        }
      }
    };
    set_word(wa, a);
    set_word(wb, b);
    sim.step(v);
    std::uint64_t result = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_TRUE((sim.plane_one(out[i]) | sim.plane_zero(out[i])) & 1)
          << "undefined output bit";
      result |= (sim.plane_one(out[i]) & 1) << i;
    }
    return result;
  }
};

TEST_F(WordFixture, AdderExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word s = gates::ripple_add(nl, a, b);
  gates::add_output_word(nl, s, "s");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, s, x, y, a, b), (x + y) & 0xf) << x << "+" << y;
    }
  }
}

TEST_F(WordFixture, SubtractorExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word s = gates::ripple_sub(nl, a, b);
  gates::add_output_word(nl, s, "s");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, s, x, y, a, b), (x - y) & 0xf);
    }
  }
}

TEST_F(WordFixture, MultiplierExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word p = gates::array_multiply(nl, a, b);
  gates::add_output_word(nl, p, "p");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, p, x, y, a, b), (x * y) & 0xf);
    }
  }
}

TEST_F(WordFixture, DividerExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word q = gates::array_divide(nl, a, b);
  gates::add_output_word(nl, q, "q");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      const std::uint64_t expect = y == 0 ? 0xf : x / y;
      EXPECT_EQ(run(nl, q, x, y, a, b), expect) << x << "/" << y;
    }
  }
}

TEST_F(WordFixture, ComparatorsExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word lt = gates::bit_to_word(nl, gates::less_than(nl, a, b), 1);
  Word gt = gates::bit_to_word(nl, gates::greater_than(nl, a, b), 1);
  Word eq = gates::bit_to_word(nl, gates::equal(nl, a, b), 1);
  gates::add_output_word(nl, lt, "lt");
  gates::add_output_word(nl, gt, "gt");
  gates::add_output_word(nl, eq, "eq");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, lt, x, y, a, b), x < y ? 1u : 0u);
      EXPECT_EQ(run(nl, gt, x, y, a, b), x > y ? 1u : 0u);
      EXPECT_EQ(run(nl, eq, x, y, a, b), x == y ? 1u : 0u);
    }
  }
}

TEST_F(WordFixture, BitwiseAndMux) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word x_and = gates::word_and(nl, a, b);
  Word x_or = gates::word_or(nl, a, b);
  Word x_xor = gates::word_xor(nl, a, b);
  Word x_not = gates::word_not(nl, a);
  GateId sel = nl.add_input("sel");
  Word x_mux = gates::mux_word(nl, sel, a, b);
  for (const auto& [w, name] :
       {std::pair{x_and, "and"}, {x_or, "or"}, {x_xor, "xor"}, {x_not, "not"},
        {x_mux, "mux"}}) {
    gates::add_output_word(nl, w, name);
  }
  for (std::uint64_t x : {0ull, 5ull, 10ull, 15ull}) {
    for (std::uint64_t y : {0ull, 3ull, 12ull, 15ull}) {
      EXPECT_EQ(run(nl, x_and, x, y, a, b), x & y);
      EXPECT_EQ(run(nl, x_or, x, y, a, b), x | y);
      EXPECT_EQ(run(nl, x_xor, x, y, a, b), x ^ y);
      EXPECT_EQ(run(nl, x_not, x, y, a, b), ~x & 0xf);
      EXPECT_EQ(run(nl, x_mux, x, y, a, b), x);  // sel defaults to 0
    }
  }
}


TEST_F(WordFixture, KoggeStoneAdderExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word s = gates::kogge_stone_add(nl, a, b);
  gates::add_output_word(nl, s, "s");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, s, x, y, a, b), (x + y) & 0xf) << x << "+" << y;
    }
  }
}

TEST_F(WordFixture, KoggeStoneSubtracterExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word s = gates::kogge_stone_sub(nl, a, b);
  gates::add_output_word(nl, s, "s");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, s, x, y, a, b), (x - y) & 0xf) << x << "-" << y;
    }
  }
}

TEST_F(WordFixture, WallaceMultiplierExhaustive4Bit) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word p = gates::wallace_multiply(nl, a, b);
  gates::add_output_word(nl, p, "p");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(run(nl, p, x, y, a, b), (x * y) & 0xf) << x << "*" << y;
    }
  }
}

TEST(FastArith, LogDepthBeatsRippleDepthAt16Bits) {
  // Structural property: the Kogge-Stone adder's combinational depth is
  // logarithmic, the ripple adder's linear.
  auto depth_of = [](Netlist& nl, const Word& out) {
    IndexVec<GateId, int> depth(nl.num_gates(), 0);
    for (GateId g : nl.levelized()) {
      for (GateId in : nl.gate(g).inputs) {
        depth[g] = std::max(depth[g], depth[in] + 1);
      }
    }
    int best = 0;
    for (GateId g : out) best = std::max(best, depth[g]);
    return best;
  };
  Netlist ripple;
  Word ra = gates::add_input_word(ripple, "a", 16);
  Word rb = gates::add_input_word(ripple, "b", 16);
  Word rs = gates::ripple_add(ripple, ra, rb);
  gates::add_output_word(ripple, rs, "s");
  Netlist fast;
  Word fa = gates::add_input_word(fast, "a", 16);
  Word fb = gates::add_input_word(fast, "b", 16);
  Word fs = gates::kogge_stone_add(fast, fa, fb);
  gates::add_output_word(fast, fs, "s");
  EXPECT_LT(depth_of(fast, fs), depth_of(ripple, rs));
}

TEST(Wordlib, OnehotSelectPicksEnabledValue) {
  Netlist nl;
  GateId e0 = nl.add_input("e0");
  GateId e1 = nl.add_input("e1");
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 4);
  Word out = gates::onehot_select(nl, {e0, e1}, {a, b}, 4);
  gates::add_output_word(nl, out, "o");

  atpg::ParallelSimulator sim(nl);
  atpg::TestVector v(nl.inputs().size(), false);
  // e1 = 1, a = 0101, b = 0011.
  v[1] = true;
  v[2] = true;  // a[0]
  v[4] = true;  // a[2]
  v[6] = true;  // b[0]
  v[7] = true;  // b[1]
  sim.step(v);
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    result |= (sim.plane_one(out[i]) & 1) << i;
  }
  EXPECT_EQ(result, 0b0011u);
}

TEST(Wordlib, WidthMismatchRejected) {
  Netlist nl;
  Word a = gates::add_input_word(nl, "a", 4);
  Word b = gates::add_input_word(nl, "b", 3);
  EXPECT_THROW(gates::ripple_add(nl, a, b), Error);
}

}  // namespace
}  // namespace hlts
