// RTL construction, Verilog dump, and -- most importantly -- functional
// equivalence: the elaborated gate-level machine, clocked through one
// schedule pass, must compute exactly what the behavioral DFG specifies.
#include <gtest/gtest.h>

#include <map>

#include "atpg/simulator.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

/// Reference interpreter for a DFG on uint64 masked to `bits`.
std::map<std::string, std::uint64_t> interpret(
    const dfg::Dfg& g, const std::map<std::string, std::uint64_t>& inputs,
    int bits) {
  const std::uint64_t mask = bits >= 64 ? ~std::uint64_t{0}
                                        : (std::uint64_t{1} << bits) - 1;
  std::map<std::string, std::uint64_t> env;
  for (const auto& [k, v] : inputs) env[k] = v & mask;
  for (dfg::OpId op : g.topo_order()) {
    const dfg::Operation& o = g.op(op);
    auto val = [&](dfg::VarId v) { return env.at(g.var(v).name); };
    std::uint64_t a = val(o.inputs[0]);
    std::uint64_t b = o.inputs.size() > 1 ? val(o.inputs[1]) : 0;
    std::uint64_t r = 0;
    switch (o.kind) {
      case dfg::OpKind::Add: r = a + b; break;
      case dfg::OpKind::Sub: r = a - b; break;
      case dfg::OpKind::Mul: r = a * b; break;
      case dfg::OpKind::Div: r = b == 0 ? mask : a / b; break;
      case dfg::OpKind::Less: r = a < b ? 1 : 0; break;
      case dfg::OpKind::Greater: r = a > b ? 1 : 0; break;
      case dfg::OpKind::Equal: r = a == b ? 1 : 0; break;
      case dfg::OpKind::And: r = a & b; break;
      case dfg::OpKind::Or: r = a | b; break;
      case dfg::OpKind::Xor: r = a ^ b; break;
      case dfg::OpKind::Not: r = ~a; break;
      case dfg::OpKind::ShiftLeft: r = a << 1; break;
      case dfg::OpKind::ShiftRight: r = a >> 1; break;
      case dfg::OpKind::Move: r = a; break;
    }
    env[g.var(o.output).name] = r & mask;
  }
  return env;
}

/// Drives the elaborated machine through reset + one full schedule pass
/// with the given input values and returns the observed output-port words
/// at the end of the pass.
std::map<std::string, std::uint64_t> run_machine(
    const rtl::RtlDesign& design, const rtl::Elaboration& elab,
    const std::map<std::string, std::uint64_t>& inputs, int bits) {
  atpg::ParallelSimulator sim(elab.netlist);
  sim.reset_state();

  const auto& nl = elab.netlist;
  auto make_vector = [&](bool reset) {
    atpg::TestVector v(nl.inputs().size(), false);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const std::string& name = nl.gate(nl.inputs()[i]).name;
      if (name == "reset") {
        v[i] = reset;
        continue;
      }
      // Input names look like "in_x[3]".
      const auto bracket = name.find('[');
      EXPECT_NE(bracket, std::string::npos) << name;
      const std::string port = name.substr(3, bracket - 3);
      const int bit = std::stoi(name.substr(bracket + 1));
      v[i] = (inputs.at(port) >> bit) & 1;
    }
    return v;
  };

  atpg::TestVector reset_vec = make_vector(true);
  atpg::TestVector run_vec = make_vector(false);

  sim.step(reset_vec);  // enter S0
  // S0 (load) .. S<steps>: one full pass, plus one observation cycle (the
  // simulator exposes during-cycle values, so the final clock edge's
  // register contents are visible one cycle later).
  for (int c = 0; c <= design.steps() + 1; ++c) sim.step(run_vec);

  std::map<std::string, std::uint64_t> out;
  for (gates::GateId o : nl.outputs()) {
    const std::string& name = nl.gate(o).name;  // "out_x[3]"
    const auto bracket = name.find('[');
    const std::string port = name.substr(4, bracket - 4);
    const int bit = std::stoi(name.substr(bracket + 1));
    const std::uint64_t plane1 = sim.plane_one(o) & 1;
    out[port] |= plane1 << bit;
  }
  (void)bits;
  return out;
}

class RtlFunctional
    : public ::testing::TestWithParam<std::tuple<std::string, core::FlowKind>> {
};

TEST_P(RtlFunctional, MachineMatchesBehavioralSpec) {
  const auto& [bench, kind] = GetParam();
  const int bits = 8;
  dfg::Dfg g = benchmarks::make_benchmark(bench);
  core::FlowResult flow = core::run_flow(kind, g, {.bits = bits});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, bits);
  rtl::Elaboration elab = rtl::elaborate(design);

  Rng rng(42 + static_cast<unsigned>(kind));
  for (int trial = 0; trial < 5; ++trial) {
    std::map<std::string, std::uint64_t> inputs;
    for (const rtl::RtlPort& p : design.inports()) {
      inputs[p.name] = rng.next_u64() & 0xff;
    }
    auto expected = interpret(g, inputs, bits);
    auto observed = run_machine(design, elab, inputs, bits);
    for (dfg::VarId v : g.var_ids()) {
      const dfg::Variable& var = g.var(v);
      // Registered outputs hold their value at the end of the pass;
      // port-direct outputs were only valid during their step and have
      // been gated off again, so only registered ones are checked here.
      if (var.is_primary_output && var.po_registered) {
        EXPECT_EQ(observed.at(var.name), expected.at(var.name))
            << bench << " output " << var.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, RtlFunctional,
    ::testing::Combine(::testing::Values("ex", "diffeq", "ewf", "paulin"),
                       ::testing::Values(core::FlowKind::Camad,
                                         core::FlowKind::Approach1,
                                         core::FlowKind::Approach2,
                                         core::FlowKind::Ours)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_flow" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(Rtl, VerilogDumpContainsStructure) {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 8);
  const std::string v = design.to_verilog();
  EXPECT_NE(v.find("module ex"), std::string::npos);
  EXPECT_NE(v.find("posedge clk"), std::string::npos);
  EXPECT_NE(v.find("out_s"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Rtl, ValidateRejectsDoubleBookedFu) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);  // several mults share step 1
  etpn::Binding b = etpn::Binding::default_binding(g);
  b.merge_modules(g, b.module_of(*g.find_op("N21")),
                  b.module_of(*g.find_op("N22")));
  EXPECT_THROW(rtl::RtlDesign::from_synthesis(g, s, b, 8), Error);
}

}  // namespace
}  // namespace hlts
