// Durability and overload tests: checkpoint/DFG/params JSON round-trips,
// Algorithm-1 resume bit-identity, the engine journal's crash-safety
// protocol (scan, interrupted cleanups, corrupt files), the fork-based
// kill-and-recover soak over every journal failpoint site, and the
// admission-control policies (Block / Reject / ShedOldest, queue deadlines,
// EngineHealth).
//
// The soak's contract is the ISSUE acceptance criterion: killing the
// process at any journal/checkpoint failpoint and replaying the directory
// through Engine::recover() yields a FlowResult bit-identical to the
// uninterrupted run, across >= 2 benchmarks x {1, 4} trial threads.
//
// Failpoint configuration is process-global; the soak therefore arms kill
// failpoints only in a fork()ed child, so the parent test process is never
// armed, and ctest runs each test in its own process anyway.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "core/flows.hpp"
#include "core/synthesis.hpp"
#include "engine/engine.hpp"
#include "engine/journal.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace hlts {
namespace {

namespace fp = util::failpoint;

// --- helpers ----------------------------------------------------------------

/// Fresh scratch directory under TMPDIR, removed (with its files) on scope
/// exit so repeated ctest runs never see a stale journal.
struct TempDir {
  std::string path;
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/hlts_recovery_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : tmpl;
  }
  ~TempDir() {
    for (const std::string& name : util::fs::list_all_files(path)) {
      util::fs::remove_file(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

/// Restores (or unsets) one environment variable on scope exit.
struct EnvGuard {
  std::string name;
  std::optional<std::string> saved;
  explicit EnvGuard(std::string n) : name(std::move(n)) {
    const char* v = std::getenv(name.c_str());
    if (v != nullptr) saved = v;
  }
  ~EnvGuard() {
    if (saved) {
      ::setenv(name.c_str(), saved->c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Structural bit-equality of two bindings, via the canonical serialized
/// form (per-slot member lists including tombstones -- see checkpoint.hpp).
bool same_binding(const sched::Schedule& s, const etpn::Binding& a,
                  const etpn::Binding& b) {
  const core::Checkpoint ca{0, s, a};
  const core::Checkpoint cb{0, s, b};
  return util::json_dump(core::checkpoint_to_json(ca)) ==
         util::json_dump(core::checkpoint_to_json(cb));
}

void expect_identical(const core::FlowResult& expected,
                      const core::FlowResult& actual) {
  EXPECT_EQ(expected.exec_time, actual.exec_time);
  EXPECT_EQ(expected.registers, actual.registers);
  EXPECT_EQ(expected.modules, actual.modules);
  EXPECT_EQ(expected.muxes, actual.muxes);
  EXPECT_EQ(expected.self_loops, actual.self_loops);
  EXPECT_TRUE(bits_equal(expected.cost.total(), actual.cost.total()));
  EXPECT_TRUE(bits_equal(expected.balance_index, actual.balance_index));
  EXPECT_TRUE(expected.schedule == actual.schedule);
  EXPECT_EQ(expected.module_allocation, actual.module_allocation);
  EXPECT_EQ(expected.register_allocation, actual.register_allocation);
  EXPECT_EQ(expected.iterations, actual.iterations);
  EXPECT_EQ(expected.stop_reason, actual.stop_reason);
  EXPECT_EQ(expected.completeness, actual.completeness);
}

core::FlowParams test_params(int threads) {
  core::FlowParams p;
  p.num_threads = threads;
  return p;
}

util::JsonValue reparse(const util::JsonValue& v) {
  std::string error;
  std::optional<util::JsonValue> doc = util::json_parse(util::json_dump(v),
                                                        &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc ? *doc : util::JsonValue();
}

/// One-shot latch for holding a job's first committed iteration open, so a
/// single-worker engine keeps its pending queue saturated deterministically.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      const std::lock_guard<std::mutex> lock(m);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return open; });
  }
};

engine::FlowRequest ours_request(const std::string& bench, int threads) {
  engine::FlowRequest r;
  r.name = bench + "/ours";
  r.kind = core::FlowKind::Ours;
  r.dfg = benchmarks::make_benchmark(bench);
  r.params = test_params(threads);
  return r;
}

// --- JSON round-trips -------------------------------------------------------

TEST(CheckpointJson, DfgRoundTripsBitIdentical) {
  for (const char* bench : {"ex", "dct", "diffeq", "ewf"}) {
    const dfg::Dfg g = benchmarks::make_benchmark(bench);
    const util::JsonValue doc = core::dfg_to_json(g);
    const dfg::Dfg back = core::dfg_from_json(reparse(doc));
    // Same construction order => same dense ids; the serialized forms (and
    // hence every downstream computation) must match exactly.
    EXPECT_EQ(util::json_dump(core::dfg_to_json(back)), util::json_dump(doc))
        << bench;
    core::FlowResult a = core::run_flow(core::FlowKind::Ours, g,
                                        test_params(1));
    core::FlowResult b = core::run_flow(core::FlowKind::Ours, back,
                                        test_params(1));
    expect_identical(a, b);
  }
}

TEST(CheckpointJson, ParamsRoundTrip) {
  core::FlowParams p;
  p.bits = 16;
  p.k = 7;
  p.alpha = 1.25;
  p.beta = 0.5;
  p.max_latency = 12;
  p.num_threads = 3;
  p.max_iterations = 42;
  p.memory_budget_bytes = 1 << 20;
  p.audit = true;
  p.incremental = !p.incremental;
  p.atpg_backend = "hybrid";
  p.sat_frames = 6;
  p.sat_conflict_budget = 1234;
  const core::FlowParams q = core::params_from_json(
      reparse(core::params_to_json(p)));
  EXPECT_EQ(q.bits, p.bits);
  EXPECT_EQ(q.k, p.k);
  EXPECT_TRUE(bits_equal(q.alpha, p.alpha));
  EXPECT_TRUE(bits_equal(q.beta, p.beta));
  EXPECT_EQ(q.max_latency, p.max_latency);
  EXPECT_EQ(q.num_threads, p.num_threads);
  EXPECT_EQ(q.max_iterations, p.max_iterations);
  EXPECT_EQ(q.memory_budget_bytes, p.memory_budget_bytes);
  EXPECT_EQ(q.audit, p.audit);
  EXPECT_EQ(q.incremental, p.incremental);
  EXPECT_EQ(q.atpg_backend, p.atpg_backend);
  EXPECT_EQ(q.sat_frames, p.sat_frames);
  EXPECT_EQ(q.sat_conflict_budget, p.sat_conflict_budget);

  // Journals written before the ATPG-backend knobs existed must stay
  // readable: absent members resolve to the defaults.
  util::JsonValue legacy = core::params_to_json(core::FlowParams{});
  util::JsonValue::Object trimmed;
  for (const auto& [key, value] : legacy.as_object()) {
    if (key != "atpg_backend" && key != "sat_frames" &&
        key != "sat_conflict_budget") {
      trimmed.emplace_back(key, value);
    }
  }
  const core::FlowParams old = core::params_from_json(
      reparse(util::JsonValue::make_object(std::move(trimmed))));
  EXPECT_EQ(old.atpg_backend, "");
  EXPECT_EQ(old.sat_frames, 0);
  EXPECT_EQ(old.sat_conflict_budget, 0);
}

TEST(CheckpointJson, CheckpointRoundTripsAndRejectsCorruption) {
  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  std::vector<core::Checkpoint> ckpts;
  core::SynthesisParams p;
  p.num_threads = 1;
  p.checkpoint_every = 1;
  p.on_checkpoint = [&](const core::Checkpoint& c) { ckpts.push_back(c); };
  (void)core::integrated_synthesis(g, p);
  ASSERT_GE(ckpts.size(), 2u);

  for (const core::Checkpoint& c : ckpts) {
    const util::JsonValue doc = core::checkpoint_to_json(c);
    const core::Checkpoint back = core::checkpoint_from_json(reparse(doc), g);
    EXPECT_EQ(back.iteration, c.iteration);
    EXPECT_TRUE(back.schedule == c.schedule);
    EXPECT_TRUE(same_binding(c.schedule, c.binding, back.binding));
  }

  // Untrusted-input contract: structural damage must surface as
  // Error(Input), never a crash or a silently wrong design.
  EXPECT_THROW((void)core::checkpoint_from_json(util::JsonValue::make_int(3), g),
               Error);
  util::JsonValue doc = core::checkpoint_to_json(ckpts.front());
  std::string text = util::json_dump(doc);
  const std::string needle = "\"iteration\":";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"wrong_key\":");
  std::string error;
  std::optional<util::JsonValue> damaged = util::json_parse(text, &error);
  ASSERT_TRUE(damaged.has_value()) << error;
  EXPECT_THROW((void)core::checkpoint_from_json(*damaged, g), Error);
}

// --- Algorithm-1 resume bit-identity ----------------------------------------

TEST(Resume, BitIdenticalAcrossBenchmarksAndThreads) {
  for (const char* bench : {"ex", "dct"}) {
    const dfg::Dfg g = benchmarks::make_benchmark(bench);
    for (const int threads : {1, 4}) {
      const core::FlowParams params = test_params(threads);
      const core::FlowResult full =
          core::run_flow(core::FlowKind::Ours, g, params);

      std::vector<core::Checkpoint> ckpts;
      core::FlowParams recording = params;
      recording.checkpoint_every = 2;
      recording.on_checkpoint = [&](const core::Checkpoint& c) {
        ckpts.push_back(c);
      };
      (void)core::run_flow(core::FlowKind::Ours, g, recording);
      ASSERT_FALSE(ckpts.empty()) << bench;

      // Resume from every persisted boundary (through the JSON round-trip,
      // exactly as the journal replays it) and compare against the
      // uninterrupted run.
      for (const core::Checkpoint& c : ckpts) {
        const core::Checkpoint back =
            core::checkpoint_from_json(reparse(core::checkpoint_to_json(c)),
                                       g);
        core::FlowParams resume = params;
        resume.resume_from = &back;
        const core::FlowResult resumed =
            core::run_flow(core::FlowKind::Ours, g, resume);
        expect_identical(full, resumed);
      }
    }
  }
}

TEST(Resume, CheckpointBoundariesMatchUninterruptedRun) {
  // Absolute-iteration cadence: a resumed run must emit checkpoints at the
  // same committed-merger counts the uninterrupted run does.
  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  std::vector<int> uninterrupted;
  core::FlowParams p = test_params(1);
  p.checkpoint_every = 2;
  p.on_checkpoint = [&](const core::Checkpoint& c) {
    uninterrupted.push_back(c.iteration);
  };
  (void)core::run_flow(core::FlowKind::Ours, g, p);
  ASSERT_GE(uninterrupted.size(), 2u);

  std::vector<core::Checkpoint> ckpts;
  core::FlowParams rec = test_params(1);
  rec.checkpoint_every = 2;
  rec.on_checkpoint = [&](const core::Checkpoint& c) { ckpts.push_back(c); };
  (void)core::run_flow(core::FlowKind::Ours, g, rec);

  std::vector<int> resumed;
  core::FlowParams rp = test_params(1);
  rp.checkpoint_every = 2;
  rp.resume_from = &ckpts.front();
  rp.on_checkpoint = [&](const core::Checkpoint& c) {
    resumed.push_back(c.iteration);
  };
  (void)core::run_flow(core::FlowKind::Ours, g, rp);

  const std::vector<int> expected(uninterrupted.begin() + 1,
                                  uninterrupted.end());
  EXPECT_EQ(resumed, expected);
}

TEST(Resume, RejectsInvalidResumeState) {
  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  std::vector<core::Checkpoint> ckpts;
  core::SynthesisParams rec;
  rec.num_threads = 1;
  rec.checkpoint_every = 1;
  rec.on_checkpoint = [&](const core::Checkpoint& c) { ckpts.push_back(c); };
  (void)core::integrated_synthesis(g, rec);
  ASSERT_FALSE(ckpts.empty());

  // trial_cache's cross-iteration memory is not part of a checkpoint.
  core::SynthesisParams bad;
  bad.num_threads = 1;
  bad.trial_cache = true;
  bad.resume_from = &ckpts.front();
  EXPECT_THROW((void)core::integrated_synthesis(g, bad), Error);

  // A checkpoint from a different design cannot seed this graph.
  const dfg::Dfg other = benchmarks::make_benchmark("dct");
  core::SynthesisParams mismatched;
  mismatched.num_threads = 1;
  mismatched.resume_from = &ckpts.front();
  EXPECT_THROW((void)core::integrated_synthesis(other, mismatched), Error);
}

// --- journal scan protocol --------------------------------------------------

engine::JournalRecord make_record(std::uint64_t id, const std::string& bench) {
  engine::JournalRecord r;
  r.id = id;
  r.name = bench + "/ours";
  r.kind = core::FlowKind::Ours;
  r.dfg = benchmarks::make_benchmark(bench);
  r.params = test_params(1);
  r.timeout_ms = 0;
  return r;
}

TEST(Journal, WriteScanRoundTrip) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(3, "ex"));
  engine::JournalRecord dsl;
  dsl.id = 7;
  dsl.name = "tiny";
  dsl.kind = core::FlowKind::Ours;
  dsl.source = "design tiny { input a, b; output o; o = a + b; }";
  dsl.params = test_params(1);
  dsl.timeout_ms = 1500;
  j.write_job(dsl);

  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  EXPECT_TRUE(scan.errors.empty());
  ASSERT_EQ(scan.jobs.size(), 2u);
  EXPECT_EQ(scan.jobs[0].record.id, 3u);
  EXPECT_TRUE(scan.jobs[0].record.dfg.has_value());
  EXPECT_EQ(scan.jobs[1].record.id, 7u);
  EXPECT_EQ(scan.jobs[1].record.name, "tiny");
  EXPECT_EQ(scan.jobs[1].record.source, dsl.source);
  EXPECT_EQ(scan.jobs[1].record.timeout_ms, 1500);
  EXPECT_FALSE(scan.jobs[0].checkpoint.has_value());
}

TEST(Journal, DoneMarkerRetiresAndScanCompletesInterruptedCleanup) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  j.write_done(1, "succeeded");
  EXPECT_TRUE(util::fs::list_files(dir.path).empty());

  // A cleanup that died right after the marker became durable: the next
  // scan must finish it and must not resurrect the job.
  j.write_job(make_record(2, "ex"));
  util::fs::write_file_atomic(dir.path + "/job-2.done.json",
                              "{\"version\":1,\"id\":2,\"state\":\"x\"}\n");
  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  EXPECT_TRUE(scan.jobs.empty());
  EXPECT_TRUE(scan.errors.empty());
  EXPECT_TRUE(util::fs::list_files(dir.path).empty());
}

TEST(Journal, ScanSweepsOrphansAndIgnoresTornTmp) {
  const TempDir dir;
  // Orphan checkpoint (its record's cleanup died between the two removes).
  util::fs::write_file_atomic(dir.path + "/job-9.ckpt.json", "{}");
  // Torn in-flight temp from a mid-write crash.
  util::fs::write_file_atomic(dir.path + "/job-4.json.tmp", "{\"trunc");
  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  EXPECT_TRUE(scan.jobs.empty());
  EXPECT_FALSE(util::fs::file_exists(dir.path + "/job-9.ckpt.json"));
}

TEST(Journal, CorruptRecordReportedAndLeftInPlace) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  util::fs::write_file_atomic(dir.path + "/job-5.json", "\x01junk bytes\xff");
  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  ASSERT_EQ(scan.jobs.size(), 1u);
  EXPECT_EQ(scan.jobs[0].record.id, 1u);
  ASSERT_EQ(scan.errors.size(), 1u);
  EXPECT_NE(scan.errors[0].find("job-5.json"), std::string::npos);
  // Left in place for inspection -- scan never destroys undecipherable data.
  EXPECT_TRUE(util::fs::file_exists(dir.path + "/job-5.json"));
}

TEST(Journal, CorruptCheckpointRemovedJobRestartsFromScratch) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  util::fs::write_file_atomic(dir.path + "/job-1.ckpt.json", "not json");
  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  ASSERT_EQ(scan.jobs.size(), 1u);
  EXPECT_FALSE(scan.jobs[0].checkpoint.has_value());
  ASSERT_EQ(scan.errors.size(), 1u);
  EXPECT_NE(scan.errors[0].find("restarts from scratch"), std::string::npos);
  EXPECT_FALSE(util::fs::file_exists(dir.path + "/job-1.ckpt.json"));
}

// --- engine journaling and recovery (in-process) ----------------------------

TEST(EngineJournal, CompletedJobsRetireTheirRecords) {
  const TempDir dir;
  core::FlowResult reference;
  {
    engine::Engine eng({.max_concurrent_jobs = 1,
                        .journal_dir = dir.path,
                        .checkpoint_every = 1});
    const engine::JobPtr job = eng.submit(ours_request("ex", 1));
    eng.wait_all();
    ASSERT_EQ(job->state(), engine::JobState::Succeeded);
    reference = *job->result();
    EXPECT_TRUE(eng.health().journaling);
    EXPECT_EQ(eng.health().journal_lag, 0u);
  }
  // Retired: nothing left to replay.
  EXPECT_TRUE(util::fs::list_files(dir.path).empty());
  expect_identical(core::run_flow(core::FlowKind::Ours,
                                  benchmarks::make_benchmark("ex"),
                                  test_params(1)),
                   reference);
}

TEST(EngineJournal, RecoverReplaysUnfinishedJobs) {
  const TempDir dir;
  {
    const engine::Journal j(dir.path);
    j.write_job(make_record(11, "ex"));
    j.write_job(make_record(12, "dct"));
  }
  engine::Engine eng({.max_concurrent_jobs = 2,
                      .journal_dir = dir.path,
                      .checkpoint_every = 1});
  const engine::Engine::RecoveryReport report = eng.recover(dir.path);
  EXPECT_TRUE(report.errors.empty());
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0]->id(), 11u);
  EXPECT_EQ(report.jobs[1]->id(), 12u);
  eng.wait_all();
  EXPECT_EQ(eng.health().recovered, 2u);
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    ASSERT_EQ(report.jobs[i]->state(), engine::JobState::Succeeded);
    const char* bench = i == 0 ? "ex" : "dct";
    expect_identical(core::run_flow(core::FlowKind::Ours,
                                    benchmarks::make_benchmark(bench),
                                    test_params(1)),
                     *report.jobs[i]->result());
  }
  // Re-journaled into the same directory, then retired on completion.
  EXPECT_TRUE(util::fs::list_files(dir.path).empty());
  // Fresh submissions must not collide with the recovered ids.
  const engine::JobPtr fresh = eng.submit(ours_request("ex", 1));
  EXPECT_GT(fresh->id(), 12u);
  eng.wait_all();
}

TEST(EngineJournal, RecoverResumesFromPersistedCheckpoint) {
  const TempDir dir;
  const dfg::Dfg g = benchmarks::make_benchmark("dct");
  std::vector<core::Checkpoint> ckpts;
  core::FlowParams rec = test_params(1);
  rec.checkpoint_every = 2;
  rec.on_checkpoint = [&](const core::Checkpoint& c) { ckpts.push_back(c); };
  (void)core::run_flow(core::FlowKind::Ours, g, rec);
  ASSERT_GE(ckpts.size(), 2u);

  {
    const engine::Journal j(dir.path);
    j.write_job(make_record(5, "dct"));
    j.write_checkpoint(5, ckpts[ckpts.size() / 2]);
  }
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .journal_dir = dir.path,
                      .checkpoint_every = 2});
  const engine::Engine::RecoveryReport report = eng.recover(dir.path);
  ASSERT_EQ(report.jobs.size(), 1u);
  eng.wait_all();
  ASSERT_EQ(report.jobs[0]->state(), engine::JobState::Succeeded);
  expect_identical(core::run_flow(core::FlowKind::Ours, g, test_params(1)),
                   *report.jobs[0]->result());
}

TEST(EngineJournal, RecoverIntoForeignDirLeavesRecordsInPlace) {
  const TempDir dir;
  {
    const engine::Journal j(dir.path);
    j.write_job(make_record(1, "ex"));
  }
  // An engine journaling elsewhere (here: not at all) replays the jobs but
  // does not adopt the directory: the records stay for their owner.
  engine::Engine eng({.max_concurrent_jobs = 1});
  const engine::Engine::RecoveryReport report = eng.recover(dir.path);
  ASSERT_EQ(report.jobs.size(), 1u);
  eng.wait_all();
  EXPECT_EQ(report.jobs[0]->state(), engine::JobState::Succeeded);
  EXPECT_TRUE(util::fs::file_exists(dir.path + "/job-1.json"));
}

TEST(EngineJournal, MissingDirectoryIsAnEmptyReplay) {
  engine::Engine eng({.max_concurrent_jobs = 1});
  const engine::Engine::RecoveryReport report =
      eng.recover("/nonexistent/hlts/journal");
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_TRUE(report.errors.empty());
}

TEST(EngineJournal, SubmitRefusesTrialCacheWhenJournaling) {
  const TempDir dir;
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .journal_dir = dir.path,
                      .checkpoint_every = 1});
  engine::FlowRequest r = ours_request("ex", 1);
  r.params.trial_cache = true;
  EXPECT_THROW((void)eng.submit(std::move(r)), Error);
}

// --- kill-and-recover soak --------------------------------------------------

/// Forks a child that arms `spec` (a kill-mode failpoint), runs one
/// journaled job, and dies at the armed site; the parent then replays the
/// journal with Engine::recover and asserts the finished FlowResult is
/// bit-identical to the uninterrupted reference.
void kill_and_recover(const std::string& spec, const std::string& bench,
                      int threads) {
  SCOPED_TRACE(spec + " " + bench + " x" + std::to_string(threads));
  const TempDir dir;
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: never returns into gtest.  Exit codes: 137 = the armed kill
    // fired (expected), 3 = bad spec, 42 = the job finished before the
    // kill fired (the test would be vacuous).
    std::string error;
    if (!fp::configure(spec, &error)) _exit(3);
    {
      engine::Engine eng({.max_concurrent_jobs = 1,
                          .journal_dir = dir.path,
                          .checkpoint_every = 1});
      const engine::JobPtr job = eng.submit(ours_request(bench, threads));
      job->wait();
    }
    _exit(42);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137) << "kill failpoint did not fire";

  // The write-ahead record must have survived the crash.
  ASSERT_TRUE(util::fs::file_exists(dir.path + "/job-1.json"));

  engine::Engine eng({.max_concurrent_jobs = 1,
                      .journal_dir = dir.path,
                      .checkpoint_every = 1});
  const engine::Engine::RecoveryReport report = eng.recover(dir.path);
  ASSERT_EQ(report.jobs.size(), 1u);
  eng.wait_all();
  ASSERT_EQ(report.jobs[0]->state(), engine::JobState::Succeeded);
  expect_identical(core::run_flow(core::FlowKind::Ours,
                                  benchmarks::make_benchmark(bench),
                                  test_params(threads)),
                   *report.jobs[0]->result());
  EXPECT_TRUE(util::fs::list_files(dir.path).empty());
}

/// The soak grid the acceptance criterion names: >= 2 benchmarks x {1, 4}
/// trial threads per failpoint site.
void kill_and_recover_grid(const std::string& spec) {
  for (const char* bench : {"ex", "dct"}) {
    for (const int threads : {1, 4}) {
      kill_and_recover(spec, bench, threads);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// With checkpoint_every = 1 the atomic-write sites fire as: trigger 1 =
// the write-ahead job record, 2 = first checkpoint, 3 = second checkpoint
// ... so killing on trigger 3 dies mid-checkpoint with an earlier
// checkpoint already durable -- recovery must resume, not restart.
TEST(KillRecoverSoak, TornWriteMidCheckpoint) {
  kill_and_recover_grid("journal.write:kill:1:0:3");
}

TEST(KillRecoverSoak, CrashBetweenWriteAndCommit) {
  kill_and_recover_grid("journal.commit:kill:1:0:3");
}

TEST(KillRecoverSoak, CrashAtCheckpointBoundary) {
  kill_and_recover_grid("journal.checkpoint:kill:1:0:2");
}

TEST(KillRecoverSoak, CrashDuringJobRetirement) {
  // The job computed its full result but died before the done marker:
  // recovery re-runs it (from the last checkpoint) to the same bits.
  kill_and_recover_grid("journal.done:kill:1:0:1");
}

TEST(KillRecoverSoak, CrashBeforeAnyCheckpoint) {
  // Only the write-ahead record is durable: recovery restarts from
  // scratch and still converges to the identical result.
  kill_and_recover("journal.checkpoint:kill:1:0:1", "ex", 1);
}

// --- journal scrub (adversarial corruption corpus) --------------------------

/// Reads a journal file, applies `mutate` to its bytes, writes it back.
void damage_file(const std::string& path,
                 const std::function<std::string(std::string)>& mutate) {
  const std::optional<std::string> content = util::fs::read_file(path);
  ASSERT_TRUE(content.has_value()) << path;
  util::fs::write_file_atomic(path, mutate(*content));
}

/// The scrub finding for `file`, or nullptr.
const engine::Journal::ScrubFinding* finding_for(
    const engine::Journal::ScrubReport& report, const std::string& file) {
  for (const auto& f : report.findings) {
    if (f.file == file) return &f;
  }
  return nullptr;
}

void expect_status(const engine::Journal::ScrubReport& report,
                   const std::string& file, const std::string& status,
                   bool corrupt) {
  const engine::Journal::ScrubFinding* f = finding_for(report, file);
  ASSERT_NE(f, nullptr) << file << " missing from scrub report";
  EXPECT_EQ(f->status, status) << file << ": " << f->detail;
  EXPECT_EQ(f->corrupt, corrupt) << file;
}

TEST(Scrub, CleanJournalHasNoFindings) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  j.write_job(make_record(2, "dct"));

  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  std::vector<core::Checkpoint> ckpts;
  core::FlowParams rec = test_params(1);
  rec.checkpoint_every = 1;
  rec.on_checkpoint = [&](const core::Checkpoint& c) { ckpts.push_back(c); };
  (void)core::run_flow(core::FlowKind::Ours, g, rec);
  ASSERT_FALSE(ckpts.empty());
  j.write_checkpoint(1, ckpts.front());

  // Zero false positives: every committed file verifies.
  const engine::Journal::ScrubReport report = engine::Engine::scrub(dir.path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files, 3);
  EXPECT_EQ(report.ok, 3);
  EXPECT_EQ(report.corrupt, 0);
  EXPECT_EQ(report.legacy, 0);
  for (const auto& f : report.findings) EXPECT_EQ(f.status, "ok") << f.file;

  // A missing directory is an empty clean report, not an error.
  EXPECT_TRUE(engine::Engine::scrub(dir.path + "/nonexistent").clean());
}

TEST(Scrub, DetectsEveryInjectedCorruption) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  for (const std::uint64_t id : {1, 2, 3, 4, 9}) {
    j.write_job(make_record(id, "ex"));
  }
  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  std::vector<core::Checkpoint> ckpts;
  core::FlowParams rec = test_params(1);
  rec.checkpoint_every = 1;
  rec.on_checkpoint = [&](const core::Checkpoint& c) { ckpts.push_back(c); };
  (void)core::run_flow(core::FlowKind::Ours, g, rec);
  ASSERT_FALSE(ckpts.empty());
  j.write_checkpoint(9, ckpts.front());

  // The corpus: one of each corruption the fault model can produce.
  damage_file(dir.path + "/job-1.json", [](std::string s) {
    return s.substr(0, s.size() / 2);  // torn write
  });
  damage_file(dir.path + "/job-2.json", [](std::string s) {
    const std::size_t at = s.find("\"name\":\"ex");
    EXPECT_NE(at, std::string::npos);
    s[at + 9] = 'y';  // bit-flip inside a value: still valid JSON
    return s;
  });
  damage_file(dir.path + "/job-3.json",
              [](std::string s) { return s + s; });  // duplicated record
  damage_file(dir.path + "/job-4.json",
              [](std::string) { return std::string(); });  // zero length
  util::fs::write_file_atomic(dir.path + "/job-7.json.tmp", "{\"trunc");
  util::fs::remove_file(dir.path + "/job-9.json");  // orphans the ckpt
  util::fs::write_file_atomic(dir.path + "/notes.txt", "operator scribble");

  const engine::Journal::ScrubReport report = engine::Engine::scrub(dir.path);
  expect_status(report, "job-1.json", "torn", true);
  expect_status(report, "job-2.json", "checksum_mismatch", true);
  expect_status(report, "job-3.json", "trailing_garbage", true);
  expect_status(report, "job-4.json", "zero_length", true);
  expect_status(report, "job-7.json.tmp", "temp_leftover", false);
  expect_status(report, "job-9.ckpt.json", "orphan_checkpoint", false);
  expect_status(report, "notes.txt", "unknown_file", false);
  EXPECT_EQ(report.corrupt, 4);
  EXPECT_EQ(report.orphans, 1);
  EXPECT_EQ(report.temp_leftovers, 1);
  EXPECT_EQ(report.unknown, 1);
  EXPECT_FALSE(report.clean());

  // The report is machine-readable and its counters survive the JSON trip.
  const util::JsonValue doc = reparse(report.to_json());
  EXPECT_EQ(doc.get_int("corrupt", -1), 4);
  EXPECT_FALSE(doc.get_bool("clean", true));
  const util::JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  EXPECT_EQ(findings->as_array().size(), report.findings.size());
}

TEST(Scrub, RecoveryNeverReplaysCorruptRecords) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  j.write_job(make_record(2, "dct"));
  damage_file(dir.path + "/job-2.json", [](std::string s) {
    const std::size_t at = s.find("\"name\":");
    EXPECT_NE(at, std::string::npos);
    s[at + 8] = '#';  // silent value damage; only the CRC can catch it
    return s;
  });

  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  ASSERT_EQ(scan.jobs.size(), 1u);
  EXPECT_EQ(scan.jobs[0].record.id, 1u);
  ASSERT_EQ(scan.errors.size(), 1u);
  EXPECT_NE(scan.errors[0].find("job-2.json"), std::string::npos);

  engine::Engine eng({.max_concurrent_jobs = 1});
  const engine::Engine::RecoveryReport report = eng.recover(dir.path);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0]->id(), 1u);
  eng.wait_all();
  EXPECT_EQ(report.jobs[0]->state(), engine::JobState::Succeeded);
  // The damaged record is evidence, not garbage: left in place.
  EXPECT_TRUE(util::fs::file_exists(dir.path + "/job-2.json"));
}

TEST(Scrub, LegacyV2RecordsStillReadable) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  // Rewrite the sealed v3 record as its pre-checksum v2 form: version
  // field back to 2, crc32c member dropped.
  damage_file(dir.path + "/job-1.json", [](std::string s) {
    std::optional<util::JsonValue> doc = util::json_parse(s);
    EXPECT_TRUE(doc.has_value());
    util::JsonValue::Object out;
    for (const auto& [key, value] : doc->as_object()) {
      if (key == "crc32c") continue;
      out.emplace_back(key, key == "version" ? util::JsonValue::make_int(2)
                                             : value);
    }
    return util::json_dump(util::JsonValue::make_object(std::move(out))) +
           "\n";
  });

  const engine::Journal::ScrubReport report = engine::Engine::scrub(dir.path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.legacy, 1);
  expect_status(report, "job-1.json", "legacy_v2", false);

  // And it replays like any committed record.
  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  EXPECT_TRUE(scan.errors.empty());
  ASSERT_EQ(scan.jobs.size(), 1u);
  EXPECT_EQ(scan.jobs[0].record.id, 1u);
  EXPECT_EQ(scan.jobs[0].record.name, "ex/ours");
}

TEST(Scrub, QuarantineMovesCorruptFilesAside) {
  const TempDir dir;
  const engine::Journal j(dir.path);
  j.write_job(make_record(1, "ex"));
  j.write_job(make_record(2, "ex"));
  damage_file(dir.path + "/job-2.json",
              [](std::string s) { return s.substr(0, s.size() / 3); });
  util::fs::write_file_atomic(dir.path + "/job-8.json.tmp", "{\"part");

  const engine::Journal::ScrubReport report =
      engine::Engine::scrub(dir.path, /*quarantine=*/true);
  EXPECT_EQ(report.corrupt, 1);
  const engine::Journal::ScrubFinding* torn = finding_for(report,
                                                          "job-2.json");
  ASSERT_NE(torn, nullptr);
  EXPECT_TRUE(torn->quarantined);
  EXPECT_FALSE(util::fs::file_exists(dir.path + "/job-2.json"));
  EXPECT_TRUE(util::fs::file_exists(dir.path + "/quarantine/job-2.json"));
  EXPECT_FALSE(util::fs::file_exists(dir.path + "/job-8.json.tmp"));

  // After quarantine the directory recovers with no errors at all.
  const engine::Journal::ScanResult scan = engine::Journal::scan(dir.path);
  EXPECT_TRUE(scan.errors.empty());
  ASSERT_EQ(scan.jobs.size(), 1u);
  EXPECT_EQ(scan.jobs[0].record.id, 1u);

  // Manual cleanup of the quarantine subdirectory (TempDir only sweeps
  // the top level).
  for (const std::string& name :
       util::fs::list_all_files(dir.path + "/quarantine")) {
    util::fs::remove_file(dir.path + "/quarantine/" + name);
  }
  ::rmdir((dir.path + "/quarantine").c_str());
}

// --- admission control ------------------------------------------------------

TEST(Overload, RejectPolicyFailsFastAtCapacity) {
  Gate gate;
  engine::JobOptions blocker;
  blocker.on_iteration = [&](const core::IterationRecord&) { gate.wait(); };
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .queue_capacity = 1,
                      .overload_policy = engine::OverloadPolicy::Reject});
  const engine::JobPtr running = eng.submit(ours_request("ex", 1), blocker);
  // Wait until the blocker has left the queue and is inside run_job.
  while (eng.health().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const engine::JobPtr queued = eng.submit(ours_request("ex", 1));
  const engine::JobPtr refused = eng.submit(ours_request("ex", 1));
  EXPECT_EQ(refused->state(), engine::JobState::Rejected);
  EXPECT_TRUE(refused->finished());
  EXPECT_NE(refused->error().find("capacity"), std::string::npos);
  EXPECT_EQ(eng.health().rejected, 1u);
  EXPECT_LE(eng.health().queue_depth, 1u);
  gate.release();
  eng.wait_all();
  EXPECT_EQ(running->state(), engine::JobState::Succeeded);
  EXPECT_EQ(queued->state(), engine::JobState::Succeeded);
}

TEST(Overload, ShedOldestEvictsExpiredDeadlinesFirst) {
  Gate gate;
  engine::JobOptions blocker;
  blocker.on_iteration = [&](const core::IterationRecord&) { gate.wait(); };
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .queue_capacity = 2,
                      .overload_policy = engine::OverloadPolicy::ShedOldest});
  const engine::JobPtr running = eng.submit(ours_request("ex", 1), blocker);
  while (eng.health().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Older job without a deadline, newer job with an already-tiny one: the
  // overflow shed must take the expired job, not the FIFO head.
  const engine::JobPtr durable = eng.submit(ours_request("ex", 1));
  engine::JobOptions perishable;
  perishable.queue_deadline = std::chrono::milliseconds(1);
  const engine::JobPtr expired = eng.submit(ours_request("ex", 1), perishable);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const engine::JobPtr newcomer = eng.submit(ours_request("ex", 1));
  EXPECT_EQ(expired->state(), engine::JobState::Rejected);
  EXPECT_NE(expired->error().find("deadline"), std::string::npos);
  EXPECT_EQ(eng.health().sheds, 1u);
  EXPECT_LE(eng.health().queue_depth, 2u);
  gate.release();
  eng.wait_all();
  EXPECT_EQ(running->state(), engine::JobState::Succeeded);
  EXPECT_EQ(durable->state(), engine::JobState::Succeeded);
  EXPECT_EQ(newcomer->state(), engine::JobState::Succeeded);
}

TEST(Overload, ShedOldestFallsBackToFifoOrder) {
  Gate gate;
  engine::JobOptions blocker;
  blocker.on_iteration = [&](const core::IterationRecord&) { gate.wait(); };
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .queue_capacity = 1,
                      .overload_policy = engine::OverloadPolicy::ShedOldest});
  const engine::JobPtr running = eng.submit(ours_request("ex", 1), blocker);
  while (eng.health().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const engine::JobPtr oldest = eng.submit(ours_request("ex", 1));
  const engine::JobPtr newest = eng.submit(ours_request("ex", 1));
  EXPECT_EQ(oldest->state(), engine::JobState::Rejected);
  EXPECT_NE(oldest->error().find("shed"), std::string::npos);
  gate.release();
  eng.wait_all();
  EXPECT_EQ(newest->state(), engine::JobState::Succeeded);
}

TEST(Overload, QueueNeverExceedsCapacityUnderSaturation) {
  Gate gate;
  engine::JobOptions blocker;
  blocker.on_iteration = [&](const core::IterationRecord&) { gate.wait(); };
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .queue_capacity = 3,
                      .overload_policy = engine::OverloadPolicy::ShedOldest});
  const engine::JobPtr running = eng.submit(ours_request("ex", 1), blocker);
  while (eng.health().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<engine::JobPtr> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(eng.submit(ours_request("ex", 1)));
    EXPECT_LE(eng.health().queue_depth, 3u) << "after submit " << i;
  }
  gate.release();
  eng.wait_all();
  std::size_t succeeded = 0;
  std::size_t shed = 0;
  for (const engine::JobPtr& job : jobs) {
    if (job->state() == engine::JobState::Succeeded) ++succeeded;
    if (job->state() == engine::JobState::Rejected) ++shed;
  }
  EXPECT_EQ(succeeded + shed, jobs.size());
  EXPECT_EQ(succeeded, 3u);  // exactly the survivors of a 3-slot queue
  EXPECT_EQ(eng.health().sheds, shed);
}

TEST(Overload, BlockPolicyWaitsForSpace) {
  Gate gate;
  engine::JobOptions blocker;
  blocker.on_iteration = [&](const core::IterationRecord&) { gate.wait(); };
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .queue_capacity = 1,
                      .overload_policy = engine::OverloadPolicy::Block});
  const engine::JobPtr running = eng.submit(ours_request("ex", 1), blocker);
  while (eng.health().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const engine::JobPtr queued = eng.submit(ours_request("ex", 1));

  std::atomic<bool> admitted{false};
  std::thread submitter([&] {
    const engine::JobPtr late = eng.submit(ours_request("ex", 1));
    admitted.store(true);
    late->wait();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load()) << "Block admitted past a full queue";
  gate.release();
  submitter.join();
  EXPECT_TRUE(admitted.load());
  eng.wait_all();
  EXPECT_EQ(queued->state(), engine::JobState::Succeeded);
}

TEST(Overload, PendingJobShedAtDispatchWhenDeadlineExpired) {
  Gate gate;
  engine::JobOptions blocker;
  blocker.on_iteration = [&](const core::IterationRecord&) { gate.wait(); };
  engine::Engine eng({.max_concurrent_jobs = 1});  // unbounded queue
  const engine::JobPtr running = eng.submit(ours_request("ex", 1), blocker);
  while (eng.health().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine::JobOptions perishable;
  perishable.queue_deadline = std::chrono::milliseconds(1);
  const engine::JobPtr stale = eng.submit(ours_request("ex", 1), perishable);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release();
  eng.wait_all();
  EXPECT_EQ(stale->state(), engine::JobState::Rejected);
  EXPECT_NE(stale->error().find("deadline"), std::string::npos);
  EXPECT_EQ(running->state(), engine::JobState::Succeeded);
}

// --- option audits and environment knobs ------------------------------------

TEST(EngineAudit, RejectsUnservableConfigurations) {
  // capacity 0 + Block could never unblock.
  EXPECT_THROW(engine::Engine({.queue_capacity = 0,
                               .overload_policy =
                                   engine::OverloadPolicy::Block}),
               Error);
  // Journaling that never persists progress.
  EXPECT_THROW(engine::Engine({.journal_dir = "/tmp/hlts_nocadence",
                               .checkpoint_every = 0}),
               Error);
  EXPECT_THROW(engine::Engine({.checkpoint_every = -1}), Error);
  // capacity 0 is servable under Reject (every submit fails fast).
  engine::Engine ok({.max_concurrent_jobs = 1,
                     .queue_capacity = 0,
                     .overload_policy = engine::OverloadPolicy::Reject});
  const engine::JobPtr job = ok.submit(ours_request("ex", 1));
  EXPECT_EQ(job->state(), engine::JobState::Rejected);
}

TEST(EngineAudit, SynthesisRejectsNegativeCheckpointCadence) {
  const dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::SynthesisParams p;
  p.num_threads = 1;
  p.checkpoint_every = -2;
  EXPECT_THROW((void)core::integrated_synthesis(g, p), Error);
}

TEST(EngineEnv, FromEnvParsesAndAudits) {
  const EnvGuard j("HLTS_JOURNAL_DIR");
  const EnvGuard q("HLTS_QUEUE_CAP");
  const EnvGuard m("HLTS_MEM_BUDGET");
  ::setenv("HLTS_JOURNAL_DIR", "/tmp/hlts_env_journal", 1);
  ::setenv("HLTS_QUEUE_CAP", "64", 1);
  ::setenv("HLTS_MEM_BUDGET", "1048576", 1);
  const engine::EngineOptions opts = engine::EngineOptions::from_env();
  EXPECT_EQ(opts.journal_dir, "/tmp/hlts_env_journal");
  EXPECT_EQ(opts.queue_capacity, 64u);
  EXPECT_EQ(opts.memory_budget_bytes, 1048576u);

  // Explicit fields in `base` win over the environment.
  engine::EngineOptions base;
  base.queue_capacity = 8;
  EXPECT_EQ(engine::EngineOptions::from_env(base).queue_capacity, 8u);

  // Negative and malformed values are input errors, not silent defaults.
  ::setenv("HLTS_MEM_BUDGET", "-5", 1);
  EXPECT_THROW((void)engine::EngineOptions::from_env(), Error);
  ::setenv("HLTS_MEM_BUDGET", "lots", 1);
  EXPECT_THROW((void)engine::EngineOptions::from_env(), Error);
  ::setenv("HLTS_MEM_BUDGET", "1", 1);
  ::setenv("HLTS_QUEUE_CAP", "-1", 1);
  EXPECT_THROW((void)engine::EngineOptions::from_env(), Error);
}

// --- health snapshot --------------------------------------------------------

TEST(Health, SnapshotExportsAsJson) {
  const TempDir dir;
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .journal_dir = dir.path,
                      .checkpoint_every = 1,
                      .queue_capacity = 16});
  const engine::JobPtr job = eng.submit(ours_request("ex", 1));
  eng.wait_all();
  ASSERT_EQ(job->state(), engine::JobState::Succeeded);
  const engine::EngineHealth h = eng.health();
  EXPECT_EQ(h.submitted, 1u);
  EXPECT_EQ(h.in_flight, 0u);
  EXPECT_TRUE(h.journaling);

  std::string error;
  const std::optional<util::JsonValue> doc = util::json_parse(h.to_json(),
                                                              &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->get_int("queue_depth", -1), 0);
  EXPECT_EQ(doc->get_int("queue_capacity", -1), 16);
  EXPECT_EQ(doc->get_int("submitted", -1), 1);
  EXPECT_EQ(doc->get_int("sheds", -1), 0);
  EXPECT_EQ(doc->get_int("rejected", -1), 0);
  EXPECT_EQ(doc->get_int("journal_lag", -1), 0);
  EXPECT_TRUE(doc->get_bool("journaling", false));

  // Unbounded capacity serializes as null, not a sentinel integer.
  engine::Engine unbounded({.max_concurrent_jobs = 1});
  const std::optional<util::JsonValue> doc2 =
      util::json_parse(unbounded.health().to_json(), &error);
  ASSERT_TRUE(doc2.has_value()) << error;
  const util::JsonValue* cap = doc2->find("queue_capacity");
  ASSERT_NE(cap, nullptr);
  EXPECT_TRUE(cap->is_null());
}

// --- journal lag (checkpoint write failures never affect the result) --------

TEST(JournalLag, CheckpointWriteFailuresDegradeDurabilityNotResults) {
  struct FailpointGuard {
    ~FailpointGuard() { fp::clear(); }
  } guard;
  const TempDir dir;
  // Every checkpoint persistence fails with a Transient error; the flow
  // must still complete with the exact uninterrupted result, and the
  // failures must be visible as journal lag.
  ASSERT_TRUE(fp::configure("journal.checkpoint:error:1:0:0"));
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .max_retries = 0,
                      .journal_dir = dir.path,
                      .checkpoint_every = 1});
  const engine::JobPtr job = eng.submit(ours_request("ex", 1));
  eng.wait_all();
  fp::clear();
  ASSERT_EQ(job->state(), engine::JobState::Succeeded);
  EXPECT_GT(eng.health().journal_lag, 0u);
  expect_identical(core::run_flow(core::FlowKind::Ours,
                                  benchmarks::make_benchmark("ex"),
                                  test_params(1)),
                   *job->result());
}

}  // namespace
}  // namespace hlts
