// Unit and property tests for the netlist simplification pass: constant
// folding, CSE, dead-logic sweep, and -- the key property -- sequential
// equivalence between the original and simplified machines under random
// stimulus (three-valued, from the unknown power-up state).
#include <gtest/gtest.h>

#include "atpg/simulator.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "gates/simplify.hpp"
#include "gates/wordlib.hpp"
#include "rtl/elaborate.hpp"
#include "util/rng.hpp"

// The raw (unsimplified) elaboration lives inside rtl::elaborate; for the
// equivalence test we rebuild a smaller sequential circuit by hand.

namespace hlts {
namespace {

using gates::GateId;
using gates::GateKind;
using gates::Netlist;

TEST(Simplify, FoldsConstantFedGates) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId z = nl.const0();
  GateId dead_and = nl.add_gate(GateKind::And, {a, z});   // == 0
  GateId keep_or = nl.add_gate(GateKind::Or, {a, dead_and});  // == a
  nl.add_output(keep_or, "o");
  auto result = gates::simplify(nl);
  // Everything collapses to out = a.
  const auto& out = result.netlist;
  EXPECT_EQ(out.stats().combinational, 0u);  // everything folded away
  EXPECT_EQ(out.stats().primary_inputs, 1u);
  // The output's driver is the input directly.
  GateId o = out.outputs()[0];
  EXPECT_EQ(out.gate(out.gate(o).inputs[0]).kind, GateKind::Input);
}

TEST(Simplify, XorIdentities) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId x1 = nl.add_gate(GateKind::Xor, {a, a});        // 0
  GateId x2 = nl.add_gate(GateKind::Xor, {a, nl.const1()});  // ~a
  GateId o = nl.add_gate(GateKind::Or, {x1, x2});        // ~a
  nl.add_output(o, "o");
  auto result = gates::simplify(nl);
  GateId drv = result.netlist.gate(result.netlist.outputs()[0]).inputs[0];
  EXPECT_EQ(result.netlist.gate(drv).kind, GateKind::Not);
}

TEST(Simplify, CseMergesDuplicates) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId g1 = nl.add_gate(GateKind::And, {a, b});
  GateId g2 = nl.add_gate(GateKind::And, {b, a});  // commutative duplicate
  GateId o = nl.add_gate(GateKind::Xor, {g1, g2});  // x ^ x == 0
  nl.add_output(o, "o");
  auto result = gates::simplify(nl);
  GateId drv = result.netlist.gate(result.netlist.outputs()[0]).inputs[0];
  EXPECT_EQ(result.netlist.gate(drv).kind, GateKind::Const0);
}

TEST(Simplify, SweepsDeadLogic) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  nl.add_gate(GateKind::And, {a, b});  // never used
  nl.add_output(a, "o");
  auto result = gates::simplify(nl);
  EXPECT_EQ(result.netlist.stats().combinational, 0u);  // all logic swept
  // Inputs always survive (test vector format must stay stable).
  EXPECT_EQ(result.netlist.stats().primary_inputs, 2u);
}

TEST(Simplify, PreservesIoOrderAndNames) {
  Netlist nl;
  GateId a = nl.add_input("alpha");
  GateId b = nl.add_input("beta");
  GateId s = nl.add_gate(GateKind::Xor, {a, b});
  nl.add_output(s, "sum");
  nl.add_output(a, "echo");
  auto result = gates::simplify(nl);
  const auto& out = result.netlist;
  EXPECT_EQ(out.gate(out.inputs()[0]).name, "alpha");
  EXPECT_EQ(out.gate(out.inputs()[1]).name, "beta");
  EXPECT_EQ(out.gate(out.outputs()[0]).name, "sum");
  EXPECT_EQ(out.gate(out.outputs()[1]).name, "echo");
}

TEST(Simplify, DffNeverTreatedAsConstant) {
  // DFF with a constant-1 input is 0 on the first cycle (power-up is X in
  // general; here the sweep must keep the flop, not fold it to 1).
  Netlist nl;
  GateId d = nl.add_dff("r");
  nl.connect_dff(d, nl.const1());
  nl.add_output(d, "o");
  auto result = gates::simplify(nl);
  EXPECT_EQ(result.netlist.stats().flip_flops, 1u);
}

TEST(Simplify, MuxRules) {
  Netlist nl;
  GateId s = nl.add_input("s");
  GateId a = nl.add_input("a");
  GateId m1 = nl.add_gate(GateKind::Mux, {nl.const0(), a, s});  // == a
  GateId m2 = nl.add_gate(GateKind::Mux, {s, nl.const0(), nl.const1()});  // == s
  GateId o = nl.add_gate(GateKind::Xor, {m1, m2});  // a ^ s
  nl.add_output(o, "o");
  auto result = gates::simplify(nl);
  GateId drv = result.netlist.gate(result.netlist.outputs()[0]).inputs[0];
  EXPECT_EQ(result.netlist.gate(drv).kind, GateKind::Xor);
  EXPECT_EQ(result.netlist.stats().combinational, 1u);  // just the xor
}

/// Property: simplification preserves sequential behaviour.  Build a small
/// sequential circuit (an accumulator with enable), simplify, and co-
/// simulate both machines from power-up under random stimulus; every
/// *defined* output of the simplified machine must match the original.
TEST(Simplify, SequentialEquivalenceUnderRandomStimulus) {
  Netlist nl;
  GateId en = nl.add_input("en");
  gates::Word inw = gates::add_input_word(nl, "in", 4);
  gates::Word acc(4);
  for (int i = 0; i < 4; ++i) acc[i] = nl.add_dff("acc");
  gates::Word sum = gates::ripple_add(nl, acc, inw);
  // Gratuitous redundancy for the simplifier to chew on.
  gates::Word padded = gates::ripple_add(nl, sum, gates::zero_word(nl, 4));
  gates::Word next = gates::mux_word(nl, en, acc, padded);
  for (int i = 0; i < 4; ++i) nl.connect_dff(acc[i], next[i]);
  gates::add_output_word(nl, acc, "out");

  auto simplified = gates::simplify(nl);
  EXPECT_LT(simplified.netlist.num_gates(), nl.num_gates());

  atpg::ParallelSimulator sim_a(nl);
  atpg::ParallelSimulator sim_b(simplified.netlist);
  Rng rng(2024);
  atpg::TestVector v(nl.inputs().size());
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    sim_a.step(v);
    sim_b.step(v);
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      GateId oa = nl.outputs()[i];
      GateId ob = simplified.netlist.outputs()[i];
      const bool a_def =
          (sim_a.plane_one(oa) | sim_a.plane_zero(oa)) & 1;
      const bool b_def =
          (sim_b.plane_one(ob) | sim_b.plane_zero(ob)) & 1;
      if (a_def && b_def) {
        EXPECT_EQ(sim_a.plane_one(oa) & 1, sim_b.plane_one(ob) & 1)
            << "cycle " << cycle << " output " << i;
      }
      // Simplification must not make outputs *less* defined.
      EXPECT_LE(a_def, b_def);
    }
  }
}

TEST(Simplify, ShrinksElaboratedBenchmarks) {
  // The multiplier zero rows and steering zero legs must fold away: the
  // elaborated netlists (already simplified inside elaborate()) contain no
  // constant-fed AND/OR gates.
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 8);
  rtl::Elaboration elab = rtl::elaborate(design);
  for (GateId id : elab.netlist.gate_ids()) {
    const gates::Gate& gate = elab.netlist.gate(id);
    if (gate.kind != GateKind::And && gate.kind != GateKind::Or) continue;
    for (GateId in : gate.inputs) {
      const GateKind k = elab.netlist.gate(in).kind;
      EXPECT_NE(k, GateKind::Const0);
      EXPECT_NE(k, GateKind::Const1);
    }
  }
}

}  // namespace
}  // namespace hlts
