// Tests for the table renderer and the schedule view.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "report/schedule_view.hpp"
#include "report/table.hpp"

namespace hlts {
namespace {

TEST(Table, RendersAlignedColumns) {
  report::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  // Header present, all cells present, every line same width.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  std::size_t width = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, RejectsArityMismatch) {
  report::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
  EXPECT_THROW(report::Table empty({}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(report::fmt_percent(0.9066), "90.66%");
  EXPECT_EQ(report::fmt_double(1.5, 2), "1.50");
  EXPECT_EQ(report::fmt_int(-3), "-3");
}

TEST(ScheduleView, ShowsStepsAndGroups) {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult ours = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  const std::string view =
      report::render_schedule(g, ours.schedule, ours.binding);
  EXPECT_NE(view.find("S0: load primary inputs"), std::string::npos);
  EXPECT_NE(view.find("N21(*)"), std::string::npos);
  EXPECT_NE(view.find("shared functional modules:"), std::string::npos);
  EXPECT_NE(view.find("(*): N21, N24"), std::string::npos);
  EXPECT_NE(view.find("shared registers:"), std::string::npos);
}

}  // namespace
}  // namespace hlts
