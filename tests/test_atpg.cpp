// Unit and property tests for the ATPG stack: fault collapsing, the
// three-valued parallel-fault simulator, PODEM, and the orchestrator.
#include <gtest/gtest.h>

#include "atpg/atpg.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "gates/wordlib.hpp"
#include "rtl/elaborate.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

using gates::GateId;
using gates::GateKind;
using gates::Netlist;

TEST(Faults, CollapseDropsBuffersInvertersAndConstants) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId n = nl.add_gate(GateKind::Not, {a});
  GateId buf = nl.add_gate(GateKind::Buf, {n});
  GateId g = nl.add_gate(GateKind::And, {buf, b});
  nl.add_output(g, "o");
  auto u = atpg::FaultUniverse::collapsed(nl);
  // Faults on: a, b, and-gate.  Not, Buf, Output dropped.  2 polarities.
  EXPECT_EQ(u.size(), 6u);
}

TEST(Faults, NamesIncludePolarity) {
  Netlist nl;
  GateId a = nl.add_input("pi");
  nl.add_output(a, "o");
  atpg::Fault f{a, true};
  EXPECT_EQ(atpg::fault_name(nl, f), "pi/sa1");
}

TEST(Simulator, ThreeValuedPowerUpIsX) {
  Netlist nl;
  GateId d = nl.add_dff("r");
  GateId a = nl.add_input("a");
  nl.connect_dff(d, a);
  nl.add_output(d, "o");
  atpg::ParallelSimulator sim(nl);
  sim.reset_state();
  sim.step({true});
  GateId o = nl.outputs()[0];
  // First cycle: register still X.
  EXPECT_EQ(sim.plane_one(o) & 1, 0u);
  EXPECT_EQ(sim.plane_zero(o) & 1, 0u);
  sim.step({true});
  // Second cycle: captured the 1.
  EXPECT_EQ(sim.plane_one(o) & 1, 1u);
}

TEST(Simulator, FaultInjectionPerLane) {
  // o = a AND b; inject a/sa0 into lane 1, b/sa1 into lane 2.
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId g = nl.add_gate(GateKind::And, {a, b});
  nl.add_output(g, "o");
  atpg::ParallelSimulator sim(nl);
  sim.inject(1, {a, false});
  sim.inject(2, {b, true});
  // a=1 b=1: lane1 sees a=0 -> o=0 (differs from good 1): detected.
  std::uint64_t det = sim.step({true, true});
  EXPECT_TRUE(det & 2);
  EXPECT_FALSE(det & 4);  // lane2: b already 1, no difference
  // a=1 b=0: lane2 sees b=1 -> o=1 vs good 0: detected.
  det = sim.step({true, false});
  EXPECT_TRUE(det & 4);
  EXPECT_FALSE(det & 2);  // lane1: o=0 either way
}

TEST(Simulator, XNeverDetects) {
  // Output driven by an uninitialized register: good is X, nothing detects.
  Netlist nl;
  GateId d = nl.add_dff("r");
  nl.connect_dff(d, d);  // holds X forever
  nl.add_output(d, "o");
  atpg::ParallelSimulator sim(nl);
  sim.inject(1, {d, true});
  EXPECT_EQ(sim.step({}), 0u);
  EXPECT_EQ(sim.step({}), 0u);
}

TEST(FaultSim, DropsDetectedFaults) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId g = nl.add_gate(GateKind::Xor, {a, b});
  nl.add_output(g, "o");
  auto universe = atpg::FaultUniverse::collapsed(nl);
  std::vector<atpg::Fault> faults = universe.faults();
  atpg::FaultSimulator fsim(nl);
  atpg::TestSequence seq{{false, false}, {true, false}, {false, true}};
  const std::size_t dropped = fsim.drop_detected(seq, faults);
  // XOR with these three vectors detects every collapsed fault.
  EXPECT_EQ(dropped, universe.size());
  EXPECT_TRUE(faults.empty());
}

TEST(Podem, FindsTestForCombinationalFault) {
  // o = (a AND b) OR c; target the AND output stuck-at-0.
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId c = nl.add_input("c");
  GateId g1 = nl.add_gate(GateKind::And, {a, b});
  GateId g2 = nl.add_gate(GateKind::Or, {g1, c});
  nl.add_output(g2, "o");
  atpg::TimeFramePodem podem(nl, 1);
  auto r = podem.generate({g1, false}, 100);
  ASSERT_EQ(r.status, atpg::PodemStatus::Detected);
  ASSERT_EQ(r.sequence.size(), 1u);
  // The test must set a=b=1, c=0.
  EXPECT_TRUE(r.sequence[0][0]);
  EXPECT_TRUE(r.sequence[0][1]);
  EXPECT_FALSE(r.sequence[0][2]);
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // o = a OR (a AND b): the AND output sa0 is undetectable (absorption).
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId g1 = nl.add_gate(GateKind::And, {a, b});
  GateId g2 = nl.add_gate(GateKind::Or, {a, g1});
  nl.add_output(g2, "o");
  atpg::TimeFramePodem podem(nl, 1);
  auto r = podem.generate({g1, false}, 10000);
  EXPECT_NE(r.status, atpg::PodemStatus::Detected);
}

TEST(Podem, GeneratedSequencesConfirmInFaultSimulator) {
  // Property: every PODEM-detected fault's sequence is confirmed by the
  // independent sequential fault simulator.
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  auto universe = atpg::FaultUniverse::collapsed(elab.netlist);
  atpg::TimeFramePodem podem(elab.netlist, 2 * (design.steps() + 1));
  atpg::FaultSimulator fsim(elab.netlist);

  int generated = 0;
  int confirmed = 0;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const atpg::Fault f =
        universe.faults()[rng.next_below(universe.size())];
    auto r = podem.generate(f, 60);
    if (r.status != atpg::PodemStatus::Detected) continue;
    ++generated;
    std::vector<atpg::Fault> just_this{f};
    if (fsim.drop_detected(r.sequence, just_this) == 1) ++confirmed;
  }
  ASSERT_GT(generated, 10);
  EXPECT_EQ(confirmed, generated);
}

TEST(Podem, CheckSequenceAgreesWithFaultSimulator) {
  // Property (both directions on random sequences): the unrolled model and
  // the sequential simulator agree on detection.
  dfg::Dfg g = benchmarks::make_paulin();
  core::FlowResult flow = core::run_flow(core::FlowKind::Approach1, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  const auto& nl = elab.netlist;
  const int period = design.steps() + 1;
  auto universe = atpg::FaultUniverse::collapsed(nl);
  atpg::TimeFramePodem podem(nl, 2 * period);
  atpg::FaultSimulator fsim(nl);

  Rng rng(77);
  int agreements = 0;
  for (int trial = 0; trial < 10; ++trial) {
    atpg::TestSequence seq;
    for (int c = 0; c < 2 * period; ++c) {
      atpg::TestVector v(nl.inputs().size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
      if (c == 0) v[0] = true;  // reset is input 0 by construction
      seq.push_back(v);
    }
    std::vector<atpg::Fault> faults = universe.faults();
    auto detected = fsim.detected_by(seq, faults);
    for (std::size_t idx : detected) {
      EXPECT_TRUE(podem.check_sequence(faults[idx], seq))
          << atpg::fault_name(nl, faults[idx]);
      ++agreements;
    }
  }
  EXPECT_GT(agreements, 100);
}

TEST(Atpg, EndToEndProducesSensibleNumbers) {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  atpg::AtpgResult r = atpg::run_atpg(elab.netlist, design.steps() + 1, {});
  EXPECT_GT(r.total_faults, 100u);
  EXPECT_GT(r.fault_coverage, 0.9);
  EXPECT_LE(r.fault_coverage, 1.0);
  EXPECT_EQ(r.detected() + r.undetected.size(), r.total_faults);
  EXPECT_GT(r.test_cycles, 0);
  EXPECT_GE(r.tg_time_ms, 0.0);
}

TEST(Atpg, DeterministicAcrossRuns) {
  dfg::Dfg g = benchmarks::make_paulin();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  atpg::AtpgOptions options;
  options.seed = 99;
  atpg::AtpgResult r1 = atpg::run_atpg(elab.netlist, design.steps() + 1, options);
  atpg::AtpgResult r2 = atpg::run_atpg(elab.netlist, design.steps() + 1, options);
  EXPECT_EQ(r1.detected(), r2.detected());
  EXPECT_EQ(r1.test_cycles, r2.test_cycles);
}

}  // namespace
}  // namespace hlts
