// Unit tests for scheduling: ASAP/ALAP/mobility, lifetimes, the
// constraint graph, list scheduling, FDS and mobility-path scheduling.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "sched/constraint_graph.hpp"
#include "sched/fds.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"
#include "sched/mobility_path.hpp"
#include "sched/schedule.hpp"

namespace hlts {
namespace {

using dfg::OpKind;

TEST(Schedule, AsapRespectsDepsAndIsMinimal) {
  dfg::Dfg g = benchmarks::make_diffeq();
  sched::Schedule s = sched::asap(g);
  EXPECT_TRUE(s.respects_data_deps(g));
  EXPECT_EQ(s.length(), g.critical_path_ops());
  // ASAP is componentwise minimal: every op with no preds sits in step 1.
  for (dfg::OpId op : g.op_ids()) {
    if (g.preds(op).empty()) {
      EXPECT_EQ(s.step(op), 1);
    }
  }
}

TEST(Schedule, AlapPushesLate) {
  dfg::Dfg g = benchmarks::make_diffeq();
  const int latency = g.critical_path_ops() + 2;
  sched::Schedule s = sched::alap(g, latency);
  EXPECT_TRUE(s.respects_data_deps(g));
  for (dfg::OpId op : g.op_ids()) {
    if (g.succs(op).empty()) {
      EXPECT_EQ(s.step(op), latency);
    }
  }
  EXPECT_THROW(sched::alap(g, g.critical_path_ops() - 1), Error);
}

TEST(Schedule, MobilityNonNegativeAndZeroOnCriticalPath) {
  dfg::Dfg g = benchmarks::make_ewf();
  const int latency = g.critical_path_ops();
  auto mob = sched::mobility(g, latency);
  bool any_zero = false;
  for (dfg::OpId op : g.op_ids()) {
    EXPECT_GE(mob[op], 0);
    if (mob[op] == 0) any_zero = true;
  }
  EXPECT_TRUE(any_zero);  // a critical path exists
}

TEST(Lifetime, BirthDeathAndDisjointness) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  auto lt = sched::LifetimeTable::compute(g, s);
  // Primary inputs are born at step 0.
  dfg::VarId a = *g.find_var("a");
  EXPECT_EQ(lt.lifetime(a).birth, 0);
  EXPECT_GE(lt.lifetime(a).death, 1);
  // u = N21(a,b) at step 1, used at step 2.
  dfg::VarId u = *g.find_var("u");
  EXPECT_EQ(lt.lifetime(u).birth, 1);
  EXPECT_EQ(lt.lifetime(u).death, 2);
  // A variable is never disjoint from itself unless empty.
  EXPECT_FALSE(lt.disjoint(a, a));
  // max_live is at least the number of primary inputs (all live at step 1).
  EXPECT_GE(lt.max_live(), 6);
}

TEST(Lifetime, UnregisteredOutputsAreEmpty) {
  dfg::Dfg g = benchmarks::make_ex();  // s, t are port-direct
  sched::Schedule sch = sched::asap(g);
  auto lt = sched::LifetimeTable::compute(g, sch);
  EXPECT_TRUE(lt.lifetime(*g.find_var("s")).empty());
  // Port-direct variables conflict with nothing.
  EXPECT_TRUE(lt.disjoint(*g.find_var("s"), *g.find_var("t")));
}

TEST(ConstraintGraph, SolvesToAsapWithoutExtraArcs) {
  dfg::Dfg g = benchmarks::make_dct();
  sched::ConstraintGraph cg(g);
  auto s = cg.solve();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, sched::asap(g));
}

TEST(ConstraintGraph, SequencingArcDelaysOp) {
  dfg::Dfg g = benchmarks::make_ex();
  dfg::OpId n21 = *g.find_op("N21");
  dfg::OpId n22 = *g.find_op("N22");
  sched::ConstraintGraph cg(g);
  cg.add_arc(n21, n22, 1);  // share a module: N22 after N21
  auto s = cg.solve();
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(s->step(n22), s->step(n21));
}

TEST(ConstraintGraph, CycleIsInfeasible) {
  dfg::Dfg g = benchmarks::make_ex();
  dfg::OpId n21 = *g.find_op("N21");
  dfg::OpId n22 = *g.find_op("N22");
  sched::ConstraintGraph cg(g);
  cg.add_arc(n21, n22, 1);
  cg.add_arc(n22, n21, 1);
  EXPECT_FALSE(cg.solve().has_value());
  EXPECT_FALSE(cg.schedule_length().has_value());
}

TEST(ConstraintGraph, ZeroWeightAllowsSameStep) {
  dfg::Dfg g = benchmarks::make_ex();
  dfg::OpId n21 = *g.find_op("N21");
  dfg::OpId n22 = *g.find_op("N22");
  sched::ConstraintGraph cg(g);
  cg.add_arc(n21, n22, 0);
  auto s = cg.solve();
  ASSERT_TRUE(s.has_value());
  EXPECT_GE(s->step(n22), s->step(n21));
}

TEST(ListSched, ResourceLimitLengthensSchedule) {
  dfg::Dfg g = benchmarks::make_ex();  // 4 multiplications
  sched::Schedule unlimited = sched::list_schedule(g);
  EXPECT_EQ(unlimited.length(), g.critical_path_ops());

  sched::ListSchedOptions options;
  options.class_limits[sched::module_class_of(OpKind::Mul)] = 1;
  sched::Schedule limited = sched::list_schedule(g, options);
  EXPECT_TRUE(limited.respects_data_deps(g));
  EXPECT_GE(limited.length(), 4);  // 4 mults serialized on one multiplier
  // At most one multiplication per step.
  for (int step = 1; step <= limited.length(); ++step) {
    int mults = 0;
    for (dfg::OpId op : limited.ops_in_step(g, step)) {
      if (g.op(op).kind == OpKind::Mul) ++mults;
    }
    EXPECT_LE(mults, 1);
  }
}

class LatencySchedulers : public ::testing::TestWithParam<std::string> {};

TEST_P(LatencySchedulers, FdsValidAndBalanced) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  const int latency = g.critical_path_ops() + 1;
  sched::Schedule s = sched::force_directed_schedule(g, {.latency = latency});
  EXPECT_TRUE(s.respects_data_deps(g));
  EXPECT_LE(s.length(), latency);
}

TEST_P(LatencySchedulers, MobilityPathValid) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  const int latency = g.critical_path_ops() + 1;
  sched::Schedule s = sched::mobility_path_schedule(g, {.latency = latency});
  EXPECT_TRUE(s.respects_data_deps(g));
  EXPECT_LE(s.length(), latency);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, LatencySchedulers,
                         ::testing::ValuesIn(benchmarks::benchmark_names()),
                         [](const auto& info) { return info.param; });

TEST(Fds, BalancesMultiplierConcurrency) {
  // Ex has 4 multiplications and a critical path of 3; with latency 4, FDS
  // must not pile all four into one step.
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::force_directed_schedule(g, {.latency = 4});
  int max_mults = 0;
  for (int step = 1; step <= s.length(); ++step) {
    int mults = 0;
    for (dfg::OpId op : s.ops_in_step(g, step)) {
      if (g.op(op).kind == OpKind::Mul) ++mults;
    }
    max_mults = std::max(max_mults, mults);
  }
  EXPECT_LE(max_mults, 2);
}

}  // namespace
}  // namespace hlts
