# Applied after gtest discovery (see TEST_INCLUDE_FILES in CMakeLists.txt):
# labels every hlts_engine_tests test `engine` and `tsan`, which
# gtest_discover_tests(PROPERTIES LABELS ...) cannot express for more than
# one label.
foreach(test_name IN LISTS hlts_engine_test_names)
  set_tests_properties("${test_name}" PROPERTIES LABELS "engine;tsan")
endforeach()
