// Unit tests for the behavioral front end: lexer, parser, compilation to
// the default-allocation DFG, and error reporting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"

namespace hlts {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  auto tokens = frontend::tokenize("design d { input a; output register x; }");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, frontend::TokenKind::KwDesign);
  EXPECT_EQ(tokens[1].text, "d");
  EXPECT_EQ(tokens.back().kind, frontend::TokenKind::End);
}

TEST(Lexer, CommentsAndPositions) {
  auto tokens = frontend::tokenize("a -- a comment\nb // more\nc");
  ASSERT_EQ(tokens.size(), 4u);  // a, b, c, end
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(frontend::tokenize("a @ b"), Error);
}

TEST(Parser, CompilesSimpleDesign) {
  dfg::Dfg g = frontend::compile(R"(
    design simple {
      input a, b;
      output register s;
      s = a + b;
    }
  )");
  EXPECT_EQ(g.name(), "simple");
  EXPECT_EQ(g.num_ops(), 1u);
  EXPECT_EQ(g.op(dfg::OpId{0}).kind, dfg::OpKind::Add);
  auto s = g.find_var("s");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(g.var(*s).is_primary_output);
  EXPECT_TRUE(g.var(*s).po_registered);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  dfg::Dfg g = frontend::compile(R"(
    design p { input a, b, c; output s;
      s = a + b * c;
    }
  )");
  // Two ops: N1 = b*c, N2 = a + t1.
  ASSERT_EQ(g.num_ops(), 2u);
  EXPECT_EQ(g.op(*g.find_op("N1")).kind, dfg::OpKind::Mul);
  EXPECT_EQ(g.op(*g.find_op("N2")).kind, dfg::OpKind::Add);
  // The add consumes the mul's result.
  EXPECT_EQ(g.preds(*g.find_op("N2")).size(), 1u);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  dfg::Dfg g = frontend::compile(R"(
    design p { input a, b, c; output s;
      s = (a + b) * c;
    }
  )");
  EXPECT_EQ(g.op(*g.find_op("N1")).kind, dfg::OpKind::Add);
  EXPECT_EQ(g.op(*g.find_op("N2")).kind, dfg::OpKind::Mul);
}

TEST(Parser, NumericLiteralsBecomeConstantPorts) {
  dfg::Dfg g = frontend::compile(R"(
    design d { input x; output s;
      s = 3 * x;
    }
  )");
  auto three = g.find_var("3");
  ASSERT_TRUE(three.has_value());
  EXPECT_TRUE(g.var(*three).is_primary_input);
}

TEST(Parser, CompilesThePaperDiffeq) {
  dfg::Dfg g = frontend::compile(R"(
    design diffeq {
      input x, y, u, dx, a;
      output register u1, x1, y1;
      output cond;
      u1 = u - 3 * x * u * dx - 3 * y * dx;
      x1 = x + dx;
      y1 = y + u * dx;
      cond = x1 < a;
    }
  )");
  // 6 multiplications, 2 subs, 2 adds, 1 comparison = 11 operations, as in
  // the hand-built benchmark.
  EXPECT_EQ(g.num_ops(), 11u);
  int muls = 0;
  for (dfg::OpId op : g.op_ids()) {
    if (g.op(op).kind == dfg::OpKind::Mul) ++muls;
  }
  EXPECT_EQ(muls, 6);
  // Left-associative chaining: 3*x*u*dx is three sequential multiplications
  // plus two subtractions -> depth 5 (the hand-built benchmark balances the
  // same computation to depth 4).
  EXPECT_EQ(g.critical_path_ops(), 5);
}

TEST(Parser, IntermediateNamesUsableDownstream) {
  dfg::Dfg g = frontend::compile(R"(
    design d { input a, b; output register s;
      t = a * b;
      s = t + a;
    }
  )");
  EXPECT_EQ(g.num_ops(), 2u);
  EXPECT_TRUE(g.find_var("t").has_value());
}

TEST(Parser, MoveForBareAlias) {
  dfg::Dfg g = frontend::compile(R"(
    design d { input a; output register s;
      s = a;
    }
  )");
  EXPECT_EQ(g.num_ops(), 1u);
  EXPECT_EQ(g.op(dfg::OpId{0}).kind, dfg::OpKind::Move);
}

TEST(Parser, UnaryNot) {
  dfg::Dfg g = frontend::compile(R"(
    design d { input a, b; output s;
      s = ~a & b;
    }
  )");
  EXPECT_EQ(g.num_ops(), 2u);
  EXPECT_EQ(g.op(*g.find_op("N1")).kind, dfg::OpKind::Not);
}

TEST(Parser, Errors) {
  EXPECT_THROW(frontend::compile("design d { s = a; }"), Error);  // undefined a
  EXPECT_THROW(frontend::compile(R"(
    design d { input a; output s; }
  )"),
               Error);  // s never assigned
  EXPECT_THROW(frontend::compile(R"(
    design d { input a, b; output s;
      a = b + b;
      s = a;
    }
  )"),
               Error);  // assignment to an input
  EXPECT_THROW(frontend::compile(R"(
    design d { input a, a; output s; s = a; }
  )"),
               Error);  // input declared twice
  EXPECT_THROW(frontend::compile("design d { input a output s; }"), Error);
}

TEST(Parser, ReassignmentCreatesVersions) {
  // Behavioral accumulation: s is reassigned twice; SSA versions s#1, s#2
  // and final s, each its own value with its own lifetime.
  dfg::Dfg g = frontend::compile(R"(
    design acc { input a, b, c; output register s;
      s = a + b;
      s = s * c;
      s = s - a;
    }
  )");
  EXPECT_EQ(g.num_ops(), 3u);
  ASSERT_TRUE(g.find_var("s#1").has_value());
  ASSERT_TRUE(g.find_var("s#2").has_value());
  ASSERT_TRUE(g.find_var("s").has_value());
  // The final version is the subtraction's output and the primary output.
  auto s = *g.find_var("s");
  EXPECT_TRUE(g.var(s).is_primary_output);
  EXPECT_EQ(g.op(g.var(s).def).kind, dfg::OpKind::Sub);
  // Chain: s#1 feeds the mul, s#2 feeds the sub.
  EXPECT_EQ(g.var(*g.find_var("s#1")).uses.size(), 1u);
  g.validate();
}

TEST(Parser, VersionedVariableReadsLatest) {
  dfg::Dfg g = frontend::compile(R"(
    design v { input a, b; output register o;
      x = a + b;
      x = x + x;
      o = x;
    }
  )");
  // o = move(x final version); x#1 used twice by the second add.
  EXPECT_EQ(g.var(*g.find_var("x#1")).uses.size(), 2u);
  auto o = *g.find_var("o");
  EXPECT_EQ(g.op(g.var(o).def).kind, dfg::OpKind::Move);
}

TEST(Parser, CompiledDesignRunsThroughValidation) {
  dfg::Dfg g = frontend::compile(R"(
    design mixed {
      input a, b, c, d;
      output register o1;
      output o2;
      o1 = (a + b) * (c - d) / (a | d);
      o2 = (a ^ b) == c;
    }
  )");
  g.validate();
  EXPECT_GE(g.num_ops(), 6u);
}

TEST(Parser, CompileOrErrorSuccess) {
  frontend::CompileResult r = frontend::compile_or_error(R"(
    design ok {
      input a, b;
      output register s;
      s = a * b + a;
    }
  )");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_TRUE(r.error.message.empty());
  EXPECT_GE(r.dfg->num_ops(), 2u);
}

TEST(Parser, CompileOrErrorReportsLexPosition) {
  frontend::CompileResult r = frontend::compile_or_error(
      "design d {\n  input a;\n  output register s;\n  s = a $ a;\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.dfg.has_value());
  EXPECT_EQ(r.error.line, 4);
  EXPECT_GT(r.error.column, 0);
  EXPECT_NE(r.error.message.find("lex"), std::string::npos);
}

TEST(Parser, CompileOrErrorReportsParsePosition) {
  frontend::CompileResult r = frontend::compile_or_error(
      "design d {\n  input a;\n  output register s;\n  s = a + ;\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error.line, 4);
  EXPECT_GT(r.error.column, 0);
}

// Adversarial corpus: hostile byte streams through the no-throw entry
// point.  The contract is a Diagnostic in CompileResult::error -- no
// exception escapes, no crash, no stack overflow -- because the engine
// runs compile_or_error on untrusted per-job sources and one malformed
// submission must never take down its worker.
TEST(Parser, AdversarialCorpusAlwaysYieldsDiagnostics) {
  const std::vector<std::string> corpus = {
      // Truncated at every interesting boundary.
      "",
      "design",
      "design d",
      "design d {",
      "design d { input",
      "design d { input a, ",
      "design d { input a; output o; o = a +",
      "design d { input a; output o; o = (a",
      "design d { input a; output o; o = a; } trailing garbage",
      // Junk bytes: control characters, high bytes, embedded NULs survive
      // std::string and must die in the lexer, not downstream.
      std::string("\x01\x02\x7f\xff\xfe junk", 10),
      std::string("design d { \x00 }", 14),
      "design d { input a; output o; o = a @ $ ` a; }",
      "\xef\xbb\xbf" "design d { }",  // UTF-8 BOM
      // Token-shaped garbage.
      "design 123 { }",
      "design d { output o; o = o; }",  // use before any definition
      "design d { input a; input a; output o; o = a; }",
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("corpus entry " + std::to_string(i));
    frontend::CompileResult r;
    EXPECT_NO_THROW(r = frontend::compile_or_error(corpus[i]));
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error.message.empty());
  }
}

TEST(Parser, DeepNestingIsACleanDiagnosticNotAStackOverflow) {
  // 100k '(' (and separately '~') would recurse factor() once per byte
  // and overflow the C++ stack without the parser's nesting cap.
  for (const char c : {'(', '~'}) {
    const std::string bomb = "design d { input a; output o; o = " +
                             std::string(100000, c) + "a; }";
    frontend::CompileResult r;
    EXPECT_NO_THROW(r = frontend::compile_or_error(bomb));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("nested deeper"), std::string::npos);
  }
  // Nesting below the cap still compiles.
  std::string deep = "design d { input a; output o; o = ";
  deep += std::string(100, '(') + "a" + std::string(100, ')') + "; }";
  frontend::CompileResult ok = frontend::compile_or_error(deep);
  EXPECT_TRUE(ok.ok()) << ok.error.message;
}

TEST(Parser, ParseErrorExceptionCarriesPosition) {
  try {
    dfg::Dfg g = frontend::compile("design d {\n  input a;\n  s = a @ a;\n}");
    FAIL() << "expected ParseError";
  } catch (const frontend::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_GT(e.column(), 0);
    EXPECT_FALSE(e.message().empty());
    // what() still carries the classic "phase error at line:col" banner, so
    // existing catch(Error) callers lose nothing.
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos);
  }
}

}  // namespace
}  // namespace hlts
