// Unit tests for the testability analysis (CC/SC/CO/SO propagation) and the
// controllability/observability balance candidate selection.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "etpn/etpn.hpp"
#include "sched/schedule.hpp"
#include "testability/balance.hpp"
#include "testability/testability.hpp"

namespace hlts {
namespace {

using etpn::Binding;
using testability::Measure;
using testability::TestabilityAnalysis;

/// a chain: in -> R(a) -> mul -> R(t) -> mul -> R(u) -> add -> out.
dfg::Dfg chain_dfg() {
  dfg::Dfg g("chain");
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  g.add_op_new_var("m1", dfg::OpKind::Mul, {a, b}, "t");
  g.add_op_new_var("m2", dfg::OpKind::Mul, {*g.find_var("t"), b}, "u");
  g.add_op_new_var("a1", dfg::OpKind::Add, {*g.find_var("u"), a}, "s");
  g.mark_output(*g.find_var("s"), true);
  return g;
}

struct Built {
  dfg::Dfg g;
  etpn::Etpn e;
};

Built build(dfg::Dfg g) {
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  return {std::move(g), std::move(e)};
}

TEST(Measure, OrderingAndScalar) {
  Measure strong{1.0, 0.0};
  Measure weak{0.5, 2.0};
  EXPECT_TRUE(strong.better_than(weak));
  EXPECT_FALSE(weak.better_than(strong));
  EXPECT_GT(strong.scalar(), weak.scalar());
  Measure same_comb_deeper{1.0, 3.0};
  EXPECT_TRUE(strong.better_than(same_comb_deeper));
}

TEST(TransferFactors, MultiplierDegradesMoreThanAdder) {
  EXPECT_LT(testability::controllability_transfer(dfg::OpKind::Mul),
            testability::controllability_transfer(dfg::OpKind::Add));
  EXPECT_LT(testability::observability_transfer(dfg::OpKind::Mul),
            testability::observability_transfer(dfg::OpKind::Add));
  // Comparisons funnel wide operands into one bit: worst observability.
  EXPECT_LT(testability::observability_transfer(dfg::OpKind::Less),
            testability::observability_transfer(dfg::OpKind::Mul));
}

TEST(Testability, ControllabilityDecaysAlongChain) {
  Built built = build(chain_dfg());
  TestabilityAnalysis analysis(built.e.data_path);

  auto reg_node = [&](const char* var) {
    // Find the register node whose label mentions the variable.
    for (etpn::DpNodeId n : built.e.data_path.node_ids()) {
      const auto& node = built.e.data_path.node(n);
      if (node.kind == etpn::DpNodeKind::Register &&
          node.name == std::string("R: ") + var) {
        return n;
      }
    }
    throw Error("register not found");
  };

  Measure ca = analysis.node_controllability(reg_node("a"));
  Measure ct = analysis.node_controllability(reg_node("t"));
  Measure cu = analysis.node_controllability(reg_node("u"));
  // PI register node: its best *input line* comes straight from the port
  // (the +1 load stage appears on its output lines).
  EXPECT_DOUBLE_EQ(ca.comb, 1.0);
  EXPECT_DOUBLE_EQ(ca.seq, 0.0);
  // Each multiplier stage multiplies the factor and adds a register stage.
  EXPECT_LT(ct.comb, ca.comb);
  EXPECT_LT(cu.comb, ct.comb);
  EXPECT_GT(cu.seq, ct.seq);

  // Observability improves toward the output register.
  Measure ou = analysis.node_observability(reg_node("u"));
  Measure ot = analysis.node_observability(reg_node("t"));
  EXPECT_GT(ou.comb, ot.comb);
}

TEST(Testability, FixpointTerminatesOnLoopyDataPath) {
  // Self-loop: u and v share a register; the adder reads and writes it.
  dfg::Dfg g("loopy");
  auto a = g.add_input("a");
  auto b2 = g.add_input("b");
  g.add_op_new_var("n1", dfg::OpKind::Add, {a, b2}, "u");
  g.add_op_new_var("n2", dfg::OpKind::Add, {*g.find_var("u"), a}, "v");
  g.mark_output(*g.find_var("v"), true);
  sched::Schedule s = sched::asap(g);
  Binding bind = Binding::default_binding(g);
  bind.merge_regs(bind.reg_of(*g.find_var("u")), bind.reg_of(*g.find_var("v")));
  etpn::Etpn e = etpn::build_etpn(g, s, bind);
  TestabilityAnalysis analysis(e.data_path);  // must terminate
  EXPECT_GT(analysis.balance_index(), 0.0);
  EXPECT_LE(analysis.balance_index(), 1.0);
}

TEST(Balance, SelectsComplementaryPairs) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  TestabilityAnalysis analysis(e.data_path);
  auto candidates =
      testability::select_balance_candidates(g, b, e, analysis, 10);
  ASSERT_FALSE(candidates.empty());
  EXPECT_LE(candidates.size(), 10u);
  // Scores are sorted descending.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].score, candidates[i].score);
  }
}

TEST(Balance, RegisterMergeImpossibleCases) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding b = Binding::default_binding(g);
  // Case (2): N21 reads both a and b -> their registers can never merge.
  EXPECT_TRUE(testability::register_merge_impossible(
      g, b, b.reg_of(*g.find_var("a")), b.reg_of(*g.find_var("b"))));
  // u (read by N25) and z (written by N27): no shared consumer, orderable.
  EXPECT_FALSE(testability::register_merge_impossible(
      g, b, b.reg_of(*g.find_var("u")), b.reg_of(*g.find_var("z"))));
}

TEST(Balance, SelfLoopPenaltyLowersScore) {
  dfg::Dfg g("pen");
  auto a = g.add_input("a");
  auto b2 = g.add_input("b");
  g.add_op_new_var("n1", dfg::OpKind::Add, {a, b2}, "u");
  g.add_op_new_var("n2", dfg::OpKind::Add, {*g.find_var("u"), b2}, "v");
  g.mark_output(*g.find_var("v"), true);
  sched::Schedule s = sched::asap(g);
  Binding bind = Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, bind);
  TestabilityAnalysis analysis(e.data_path);

  testability::BalanceOptions no_penalty;
  no_penalty.self_loop_penalty = 0.0;
  testability::BalanceOptions heavy;
  heavy.self_loop_penalty = 10.0;

  auto without = testability::select_balance_candidates(g, bind, e, analysis,
                                                        100, no_penalty);
  auto with = testability::select_balance_candidates(g, bind, e, analysis,
                                                     100, heavy);
  ASSERT_EQ(without.size(), with.size());
  // Merging R(u) with R(v) creates a self-loop (n2 reads u, writes v); with
  // the heavy penalty that pair must rank last.
  auto is_uv = [&](const testability::MergeCandidate& c) {
    return c.kind == testability::MergeCandidate::Kind::Registers &&
           c.creates_self_loop;
  };
  ASSERT_TRUE(std::any_of(with.begin(), with.end(), is_uv));
  EXPECT_TRUE(is_uv(with.back()));
}

TEST(Testability, BalanceIndexWithinUnitRange) {
  for (const std::string& name : benchmarks::benchmark_names()) {
    Built built = build(benchmarks::make_benchmark(name));
    TestabilityAnalysis analysis(built.e.data_path);
    EXPECT_GT(analysis.balance_index(), 0.0) << name;
    EXPECT_LE(analysis.balance_index(), 1.0) << name;
  }
}

}  // namespace
}  // namespace hlts
