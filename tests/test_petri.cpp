// Unit tests for the timed Petri net engine: firing semantics, reachability
// tree, 1-safety, deadlock detection, and critical-path extraction.
#include <gtest/gtest.h>

#include "petri/petri.hpp"
#include "util/error.hpp"

namespace hlts {
namespace {

using petri::Marking;
using petri::PetriNet;
using petri::PlaceId;
using petri::TransId;

/// S0 -> S1 -> S2 chain with S0 initially marked.
PetriNet chain3() {
  PetriNet net("chain");
  PlaceId s0 = net.add_place("S0", 0, true);
  PlaceId s1 = net.add_place("S1", 1);
  PlaceId s2 = net.add_place("S2", 1);
  net.add_transition("t01", {s0}, {s1});
  net.add_transition("t12", {s1}, {s2});
  return net;
}

TEST(Petri, FiringMovesToken) {
  PetriNet net = chain3();
  Marking m = net.initial_marking();
  EXPECT_TRUE(m.has(PlaceId{0}));
  EXPECT_TRUE(net.enabled(TransId{0}, m));
  EXPECT_FALSE(net.enabled(TransId{1}, m));
  Marking m2 = net.fire(TransId{0}, m);
  EXPECT_FALSE(m2.has(PlaceId{0}));
  EXPECT_TRUE(m2.has(PlaceId{1}));
}

TEST(Petri, ReachabilityOfChain) {
  PetriNet net = chain3();
  petri::ReachabilityTree tree(net);
  EXPECT_EQ(tree.size(), 3u);  // {S0}, {S1}, {S2}
  EXPECT_FALSE(tree.has_deadlock());  // terminates in a sink place
  Marking final_m(net.num_places());
  final_m.set(PlaceId{2});
  EXPECT_TRUE(tree.reaches(final_m));
}

TEST(Petri, CriticalPathOfChain) {
  PetriNet net = chain3();
  auto cp = petri::critical_path(net);
  EXPECT_EQ(cp.length, 2);  // S0 has delay 0, S1 + S2 one each
  EXPECT_EQ(cp.places.size(), 3u);
}

TEST(Petri, ForkJoinCriticalPathTakesLongerBranch) {
  PetriNet net("forkjoin");
  PlaceId s = net.add_place("s", 0, true);
  PlaceId a1 = net.add_place("a1", 1);
  PlaceId a2 = net.add_place("a2", 1);
  PlaceId b = net.add_place("b", 1);
  PlaceId join = net.add_place("j", 1);
  net.add_transition("fork", {s}, {a1, b});
  net.add_transition("a12", {a1}, {a2});
  net.add_transition("join", {a2, b}, {join});
  // Long branch: s -> a1 -> a2 -> join = 0+1+1+1; short: s -> b -> join.
  auto cp = petri::critical_path(net);
  EXPECT_EQ(cp.length, 3);

  petri::ReachabilityTree tree(net);
  EXPECT_FALSE(tree.has_deadlock());
  // Markings: {s}, {a1,b}, {a2,b}, {j}.
  EXPECT_EQ(tree.size(), 4u);
}

TEST(Petri, LoopTraversedOnceForCriticalPath) {
  PetriNet net("loop");
  PlaceId s0 = net.add_place("S0", 0, true);
  PlaceId s1 = net.add_place("S1", 1);
  PlaceId s2 = net.add_place("S2", 1);
  PlaceId done = net.add_place("done", 0);
  net.add_transition("t01", {s0}, {s1});
  net.add_transition("t12", {s1}, {s2});
  net.add_transition("loop", {s2}, {s1}, /*guard_group=*/1, true);
  net.add_transition("exit", {s2}, {done}, /*guard_group=*/1, false);
  auto cp = petri::critical_path(net);
  EXPECT_EQ(cp.length, 2);  // S1 + S2, loop back-arc not retraversed
}

TEST(Petri, UnsafeNetRejected) {
  PetriNet net("unsafe");
  PlaceId a = net.add_place("a", 1, true);
  PlaceId b = net.add_place("b", 1, true);
  PlaceId c = net.add_place("c", 1);
  net.add_transition("ta", {a}, {c});
  net.add_transition("tb", {b}, {c});
  // Firing ta then tb puts a second token into c.
  EXPECT_THROW(petri::ReachabilityTree tree(net), Error);
}

TEST(Petri, DeadlockDetected) {
  PetriNet net("dead");
  PlaceId a = net.add_place("a", 1, true);
  PlaceId b = net.add_place("b", 1);  // never marked
  PlaceId c = net.add_place("c", 1);
  net.add_transition("t", {a, b}, {c});
  petri::ReachabilityTree tree(net);
  // 'a' is marked but the only transition needs 'b' too, and 'a' is not a
  // sink place -> deadlock.
  EXPECT_TRUE(tree.has_deadlock());
}

TEST(Petri, TransitionNeedsPlaces) {
  PetriNet net;
  PlaceId a = net.add_place("a", 1, true);
  EXPECT_THROW(net.add_transition("bad", {}, {a}), Error);
  EXPECT_THROW(net.add_transition("bad2", {a}, {}), Error);
}

TEST(Petri, NodeBoundEnforced) {
  // A 12-place fully parallel net has 2^12 markings; a small bound trips.
  PetriNet net("big");
  std::vector<PlaceId> starts;
  for (int i = 0; i < 12; ++i) {
    PlaceId p = net.add_place("p" + std::to_string(i), 1, true);
    PlaceId q = net.add_place("q" + std::to_string(i), 1);
    net.add_transition("t" + std::to_string(i), {p}, {q});
    starts.push_back(p);
  }
  EXPECT_THROW(petri::ReachabilityTree tree(net, /*max_nodes=*/100), Error);
}

TEST(Petri, DotRendering) {
  PetriNet net = chain3();
  std::string dot = net.to_dot();
  EXPECT_NE(dot.find("S0 *"), std::string::npos);  // initial marking starred
  EXPECT_NE(dot.find("t01"), std::string::npos);
}

}  // namespace
}  // namespace hlts
