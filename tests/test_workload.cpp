// Workload-generator tests (`ctest -L workload`): the seeded random-DFG
// generator is bit-deterministic per (seed, shape) -- token-compared across
// repeated generation and across synthesis thread counts -- its shape knobs
// verifiably steer the graph (depth chain, loop states, memory-port
// serialization), its designs pass FlowParams::audit under all four flows,
// and the acceptance-scale check: a >= 2000-op seeded design synthesizes
// under every flow.  Plus the traffic-pattern schedule: exact apportionment,
// determinism, and the shape of each pattern.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "core/flows.hpp"
#include "dfg/dfg.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"
#include "workload/traffic.hpp"

namespace hlts {
namespace {

workload::DfgShape rich_shape(int ops) {
  workload::DfgShape s;
  s.ops = ops;
  s.depth = 10;
  s.fanout = 3;
  s.inputs = 8;
  s.loop_density = 0.1;
  s.self_loop_density = 0.5;
  s.mul_fraction = 0.25;
  s.cmp_fraction = 0.05;
  s.logic_fraction = 0.10;
  s.memories = 2;
  s.memory_ports = 2;
  s.memory_access_density = 0.2;
  return s;
}

// ---------------------------------------------------------------------------
// Determinism.

TEST(WorkloadGenerator, SameSeedAndShapeIsBitIdentical) {
  const workload::DfgShape shape = rich_shape(120);
  const std::string a = workload::tokens(workload::generate(42, shape));
  const std::string b = workload::tokens(workload::generate(42, shape));
  EXPECT_EQ(a, b);
  // And across a fresh Dfg build in a different order of calls: generation
  // is a pure function of (seed, shape), nothing ambient leaks in.
  (void)workload::generate(7, rich_shape(40));
  EXPECT_EQ(workload::tokens(workload::generate(42, shape)), a);
}

TEST(WorkloadGenerator, DifferentSeedsAndShapesDiffer) {
  const workload::DfgShape shape = rich_shape(120);
  const std::string base = workload::tokens(workload::generate(1, shape));
  EXPECT_NE(workload::tokens(workload::generate(2, shape)), base);
  workload::DfgShape wider = shape;
  wider.fanout = 1;
  EXPECT_NE(workload::tokens(workload::generate(1, wider)), base);
}

TEST(WorkloadGenerator, SynthesisOfGeneratedDesignIsThreadCountInvariant) {
  const dfg::Dfg g = workload::generate(11, rich_shape(80));
  core::FlowParams serial;
  serial.num_threads = 1;
  serial.max_iterations = 3;  // the equivalence shows up in the first trials
  core::FlowParams parallel = serial;
  parallel.num_threads = 4;
  for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
    const api::FlowResultV1 a = api::FlowResultV1::from_result(
        "t", core::run_flow(kind, g, serial));
    const api::FlowResultV1 b = api::FlowResultV1::from_result(
        "t", core::run_flow(kind, g, parallel));
    EXPECT_TRUE(a.design_identical(b)) << core::flow_name(kind);
  }
}

// ---------------------------------------------------------------------------
// Shape knobs.

TEST(WorkloadGenerator, DepthKnobDrivesTheCriticalPath) {
  for (int depth : {5, 20, 50}) {
    workload::DfgShape s;
    s.ops = 200;
    s.depth = depth;
    s.fanout = 2;
    s.inputs = 6;
    const dfg::Dfg g = workload::generate(3, s);
    EXPECT_EQ(g.num_ops(), 200);
    // The chain threads every populated layer, so the critical path tracks
    // the depth knob exactly (no states/memory to lengthen it here).
    EXPECT_EQ(g.critical_path_ops(), depth) << "depth=" << depth;
  }
}

TEST(WorkloadGenerator, LoopDensityCreatesRegisteredStateOutputs) {
  workload::DfgShape s;
  s.ops = 100;
  s.depth = 8;
  s.inputs = 4;
  s.loop_density = 0.2;       // 20 loop states
  s.self_loop_density = 0.5;  // 10 of them read their own state input
  const dfg::Dfg g = workload::generate(5, s);
  int registered = 0;
  for (const dfg::VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    if (var.is_primary_output && var.po_registered) ++registered;
  }
  EXPECT_EQ(registered, 20);
  // The self-loop states close directly: update op k reads state input sK.
  for (int k = 0; k < 10; ++k) {
    const auto op = g.find_op("u" + std::to_string(k));
    ASSERT_TRUE(op.has_value()) << k;
    const dfg::Variable& in0 = g.var(g.op(*op).inputs[0]);
    EXPECT_EQ(in0.name, "s" + std::to_string(k));
    EXPECT_TRUE(in0.is_primary_input);
  }
}

TEST(WorkloadGenerator, MemoryPortTokensSerializeEveryAccess) {
  workload::DfgShape s;
  s.ops = 64;
  s.depth = 1;  // no layer chaining: any depth must come from the port
  s.inputs = 4;
  s.memories = 1;
  s.memory_ports = 1;
  s.memory_access_density = 1.0;  // every op is an access on the one port
  const dfg::Dfg g = workload::generate(9, s);
  // One port means one token chain through all 64 accesses: the critical
  // path is the whole op count even though the layer structure is flat.
  EXPECT_EQ(g.critical_path_ops(), 64);
  // Two ports halve the chain (roughly): the accesses split across two
  // independently threaded tokens.
  s.memory_ports = 2;
  const dfg::Dfg g2 = workload::generate(9, s);
  EXPECT_LT(g2.critical_path_ops(), 64);
  EXPECT_GT(g2.critical_path_ops(), 16);
}

TEST(WorkloadGenerator, RejectsMalformedShapes) {
  workload::DfgShape s;
  s.ops = 0;
  EXPECT_THROW((void)workload::generate(1, s), Error);
  s = workload::DfgShape{};
  s.loop_density = 1.5;
  EXPECT_THROW((void)workload::generate(1, s), Error);
  s = workload::DfgShape{};
  s.mul_fraction = 0.6;
  s.div_fraction = 0.6;  // mix sums past 1
  EXPECT_THROW((void)workload::generate(1, s), Error);
  s = workload::DfgShape{};
  s.memories = 1;
  s.memory_ports = 0;
  EXPECT_THROW((void)workload::generate(1, s), Error);
}

// ---------------------------------------------------------------------------
// Generated designs synthesize, with invariants audited.

TEST(WorkloadGenerator, GeneratedDesignsAuditUnderAllFourFlows) {
  const dfg::Dfg g = workload::generate(21, rich_shape(120));
  core::FlowParams p;
  p.num_threads = 2;
  p.max_iterations = 3;
  p.audit = true;  // audit_design + audit_etpn throw on any inconsistency
  for (core::FlowKind kind :
       {core::FlowKind::Camad, core::FlowKind::Approach1,
        core::FlowKind::Approach2, core::FlowKind::Ours}) {
    const core::FlowResult r = core::run_flow(kind, g, p);
    EXPECT_GE(r.exec_time, g.critical_path_ops()) << core::flow_name(kind);
    EXPECT_GT(r.registers, 0) << core::flow_name(kind);
    EXPECT_GT(r.modules, 0) << core::flow_name(kind);
  }
}

TEST(WorkloadGenerator, TwoThousandOpDesignSynthesizesUnderAllFourFlows) {
  // The acceptance-scale check.  Shallow-ish depth keeps the FDS mobility
  // windows (and so Approach 1's runtime) bounded; the iteration budget
  // bounds the Algorithm-1 flows, which legitimately report "partial".
  workload::DfgShape s;
  s.ops = 2000;
  s.depth = 40;
  s.fanout = 2;
  s.inputs = 12;
  s.loop_density = 0.02;
  s.self_loop_density = 0.5;
  s.memories = 2;
  s.memory_ports = 2;
  s.memory_access_density = 0.05;
  const dfg::Dfg g = workload::generate(7, s);
  ASSERT_EQ(g.num_ops(), 2000);
  core::FlowParams p;
  p.num_threads = 4;
  p.max_iterations = 2;
  p.audit = true;
  for (core::FlowKind kind :
       {core::FlowKind::Approach1, core::FlowKind::Approach2,
        core::FlowKind::Camad, core::FlowKind::Ours}) {
    const core::FlowResult r = core::run_flow(kind, g, p);
    EXPECT_GE(r.exec_time, g.critical_path_ops()) << core::flow_name(kind);
    EXPECT_GT(r.registers, 0) << core::flow_name(kind);
  }
}

// ---------------------------------------------------------------------------
// Traffic patterns.

TEST(Traffic, TokensRoundTripAndUnknownTokensThrow) {
  for (workload::Pattern p : workload::all_patterns()) {
    EXPECT_EQ(workload::pattern_from_token(workload::pattern_name(p)), p);
  }
  EXPECT_THROW((void)workload::pattern_from_token("zipfian"), Error);
}

TEST(Traffic, ApportionSumsExactlyAndIsDeterministic) {
  for (workload::Pattern p : workload::all_patterns()) {
    for (int jobs : {1, 7, 24, 100}) {
      for (int phase = 0; phase < 4; ++phase) {
        const std::vector<int> a = workload::apportion(p, 6, 4, phase, jobs);
        ASSERT_EQ(a.size(), 6u);
        int sum = 0;
        for (const int v : a) {
          EXPECT_GE(v, 0);
          sum += v;
        }
        EXPECT_EQ(sum, jobs) << workload::pattern_name(p) << " phase " << phase;
        EXPECT_EQ(workload::apportion(p, 6, 4, phase, jobs), a);
      }
    }
  }
}

TEST(Traffic, UniformSpreadsEvenly) {
  const std::vector<int> a =
      workload::apportion(workload::Pattern::Uniform, 4, 2, 0, 8);
  EXPECT_EQ(a, (std::vector<int>{2, 2, 2, 2}));
}

TEST(Traffic, DiagonalConcentratesOnTheDiagonalConnections) {
  // 4 conns x 4 phases: phase k belongs to connection k alone.
  for (int phase = 0; phase < 4; ++phase) {
    const std::vector<int> a =
        workload::apportion(workload::Pattern::Diagonal, 4, 4, phase, 12);
    for (int conn = 0; conn < 4; ++conn) {
      const double w =
          workload::pattern_weight(workload::Pattern::Diagonal, 4, 4, conn, phase);
      if (a[static_cast<std::size_t>(conn)] == 12) {
        EXPECT_GT(w, 0.0);
      } else {
        EXPECT_EQ(a[static_cast<std::size_t>(conn)], 0);
        EXPECT_EQ(w, 0.0);
      }
    }
  }
}

TEST(Traffic, LogDiagonalDecaysWithDistanceButNeverSilences) {
  const int conns = 8;
  const int phases = 8;
  const int phase = 0;
  double prev = -1.0;
  for (int d = 0; d < conns / 2; ++d) {
    const double w = workload::pattern_weight(workload::Pattern::LogDiagonal,
                                              conns, phases, d, phase);
    EXPECT_GT(w, 0.0) << d;
    if (prev >= 0.0) {
      EXPECT_LT(w, prev) << d;
    }
    prev = w;
  }
}

TEST(Traffic, QuasiDiagonalHasShouldersAndSilence) {
  const int conns = 8;
  std::set<double> seen;
  for (int conn = 0; conn < conns; ++conn) {
    seen.insert(workload::pattern_weight(workload::Pattern::QuasiDiagonal,
                                         conns, conns, conn, 0));
  }
  // Full weight on the diagonal, half on the shoulders, zero elsewhere.
  EXPECT_EQ(seen, (std::set<double>{0.0, 0.5, 1.0}));
}

}  // namespace
}  // namespace hlts
