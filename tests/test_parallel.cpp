// Tests for the thread pool and the serial-vs-parallel equivalence
// contract: integrated_synthesis and the fault simulator must produce
// bit-identical results for every thread count.  This executable carries
// the `tsan` CTest label so it can run under -fsanitize=thread
// (cmake -DHLTS_SANITIZE=thread, then `ctest -L tsan`).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "core/synthesis.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hlts {
namespace {

TEST(ThreadPool, EmptyRangeReturnsImmediately) {
  util::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> out(100, 0);
  pool.parallel_for(out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 5000;
  std::vector<std::size_t> out(n, 0);
  std::atomic<std::size_t> calls{0};
  pool.parallel_for(n, [&](std::size_t i) {
    out[i] = i * i;
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  util::ThreadPool pool(3);
  std::size_t total = 0;
  for (int job = 0; job < 50; ++job) {
    std::vector<int> out(17, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
    total += static_cast<std::size_t>(
        std::accumulate(out.begin(), out.end(), 0));
  }
  EXPECT_EQ(total, 50u * 17u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("task 57");
                                   }
                                 }),
               std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Every task throws; the caller must deterministically see index 0's
  // exception regardless of scheduling.
  util::ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    try {
      pool.parallel_for(64, [](std::size_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPool, AllIndicesAttemptedDespiteExceptions) {
  // A throwing task must not abort the job: every other index still runs,
  // so a parallel stage's side effects are complete when the exception
  // surfaces (the synthesis loop relies on this to stay exception-atomic).
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> ran(64);
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      ran[i].fetch_add(1, std::memory_order_relaxed);
      if (i % 7 == 3) throw std::runtime_error("injected");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, BadAllocPropagatesAndPoolSurvives) {
  util::ThreadPool pool(3);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                     if (i == 0) throw std::bad_alloc();
                                   }),
                 std::bad_alloc);
  }
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedCallRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      inner_calls.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_calls.load(), 4 * 8);
}

TEST(ThreadPool, ParallelMapKeepsIndexOrder) {
  util::ThreadPool pool(4);
  std::vector<int> out = pool.parallel_map<int>(
      257, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(util::ThreadPool::default_threads(), 1u);
}

// --- serial-vs-parallel equivalence of Algorithm 1 -------------------------

using Trajectory = std::vector<core::IterationRecord>;

void expect_identical(const core::SynthesisResult& a,
                      const core::SynthesisResult& b) {
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.cost.total(), b.cost.total());  // bitwise: no tolerance
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    const core::IterationRecord& ra = a.trajectory[i];
    const core::IterationRecord& rb = b.trajectory[i];
    EXPECT_EQ(ra.description, rb.description) << "iteration " << i;
    EXPECT_EQ(ra.delta_e, rb.delta_e) << "iteration " << i;
    EXPECT_EQ(ra.delta_h, rb.delta_h) << "iteration " << i;
    EXPECT_EQ(ra.delta_c, rb.delta_c) << "iteration " << i;
    EXPECT_EQ(ra.exec_time, rb.exec_time) << "iteration " << i;
    EXPECT_EQ(ra.hw_cost, rb.hw_cost) << "iteration " << i;
  }
  EXPECT_EQ(a.schedule, b.schedule);
}

core::SynthesisResult run(const dfg::Dfg& g, int threads, bool cache) {
  core::SynthesisParams p;
  p.bits = 8;
  p.k = 5;
  p.num_threads = threads;
  p.trial_cache = cache;
  return core::integrated_synthesis(g, p);
}

TEST(ParallelSynthesis, EwfIdenticalAcrossThreadCounts) {
  dfg::Dfg g = benchmarks::make_ewf();
  core::SynthesisResult serial = run(g, 1, true);
  core::SynthesisResult parallel8 = run(g, 8, true);
  ASSERT_FALSE(serial.trajectory.empty());
  expect_identical(serial, parallel8);
}

TEST(ParallelSynthesis, DiffeqIdenticalAcrossThreadCountsAndCache) {
  dfg::Dfg g = benchmarks::make_diffeq();
  for (bool cache : {false, true}) {
    core::SynthesisResult serial = run(g, 1, cache);
    core::SynthesisResult parallel3 = run(g, 3, cache);
    core::SynthesisResult parallel8 = run(g, 8, cache);
    ASSERT_FALSE(serial.trajectory.empty());
    expect_identical(serial, parallel3);
    expect_identical(serial, parallel8);
  }
}

TEST(ParallelSynthesis, ConnectivityPolicyIdenticalAcrossThreadCounts) {
  dfg::Dfg g = benchmarks::make_dct();
  core::SynthesisParams p;
  p.bits = 8;
  p.policy = core::SelectionPolicy::Connectivity;
  p.order = core::OrderStrategy::Plain;
  p.compat = etpn::ModuleCompat::AluClass;
  p.require_improvement = true;
  p.trial_cache = true;
  p.num_threads = 1;
  core::SynthesisResult serial = core::integrated_synthesis(g, p);
  p.num_threads = 6;
  core::SynthesisResult parallel6 = core::integrated_synthesis(g, p);
  expect_identical(serial, parallel6);
}

// --- serial-vs-parallel equivalence of the fault simulator -----------------

TEST(ParallelFaultSim, DetectedSetIdenticalAcrossThreadCounts) {
  // A real synthesized netlist with well over 63 collapsed faults, so the
  // parallel path actually spans several batches.
  dfg::Dfg g = benchmarks::make_diffeq();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  auto universe = atpg::FaultUniverse::collapsed(elab.netlist);
  std::vector<atpg::Fault> faults = universe.faults();
  ASSERT_GT(faults.size(), 126u) << "need at least 3 batches";

  const int period = design.steps() + 1;
  Rng rng(123);
  atpg::TestSequence seq;
  for (int c = 0; c < 3 * period; ++c) {
    atpg::TestVector v(elab.netlist.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    if (c == 0) v[0] = true;  // reset is input 0 by construction
    seq.push_back(v);
  }

  atpg::FaultSimulator serial(elab.netlist, 1);
  atpg::FaultSimulator parallel4(elab.netlist, 4);
  std::vector<std::size_t> expected = serial.detected_by(seq, faults);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(parallel4.detected_by(seq, faults), expected);

  // drop_detected must agree too (it erases by the same indices).
  std::vector<atpg::Fault> f1 = faults, f2 = faults;
  EXPECT_EQ(serial.drop_detected(seq, f1), parallel4.drop_detected(seq, f2));
  EXPECT_EQ(f1.size(), f2.size());
}

TEST(ParallelFaultSim, PartialBatchStopsEarlyWithSameResult) {
  // Regression for the partial-batch early-exit: fewer than 63 faults, all
  // detectable by the first vectors -- appending garbage vectors must not
  // change the detected set.
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  auto universe = atpg::FaultUniverse::collapsed(elab.netlist);
  std::vector<atpg::Fault> few(universe.faults().begin(),
                               universe.faults().begin() + 40);

  const int period = design.steps() + 1;
  Rng rng(9);
  atpg::TestSequence seq;
  for (int c = 0; c < 4 * period; ++c) {
    atpg::TestVector v(elab.netlist.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    if (c == 0) v[0] = true;
    seq.push_back(v);
  }
  atpg::FaultSimulator fsim(elab.netlist, 1);
  std::vector<std::size_t> base = fsim.detected_by(seq, few);

  atpg::TestSequence longer = seq;
  for (int c = 0; c < 200; ++c) {
    atpg::TestVector v(elab.netlist.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    longer.push_back(v);
  }
  // More vectors can only detect more; everything from the short sequence
  // stays detected, in the same ascending order.
  std::vector<std::size_t> more = fsim.detected_by(longer, few);
  EXPECT_TRUE(std::includes(more.begin(), more.end(), base.begin(), base.end()));
  EXPECT_TRUE(std::is_sorted(more.begin(), more.end()));
}

}  // namespace
}  // namespace hlts
