// Self-healing lifecycle tests (`ctest -L lifecycle`): the pure state
// machines behind the supervisor's shard lifecycle -- circuit breaker,
// respawn backoff with flap quarantine, EWMA scores, the latency window
// that derives the hedge trigger, and the CoDel admission controller --
// all driven with synthetic time, plus health-aware routing, and the
// headline kill-respawn-rejoin soak: a real Server with respawn enabled,
// a SIGKILLed shard worker mid-load, and the assertion that every job is
// answered exactly once while the shard respawns, reclaims its journal
// and rejoins the ring.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "engine/codel.hpp"
#include "serve/client.hpp"
#include "serve/lifecycle.hpp"
#include "serve/router.hpp"
#include "serve/supervisor.hpp"
#include "util/json.hpp"

namespace hlts {
namespace {

// ---------------------------------------------------------------------------
// Circuit breaker.

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndCoolsDown) {
  serve::CircuitBreaker b(3, /*cooldown_ms=*/1000);
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Closed);
  b.record_failure(10);
  b.record_failure(20);
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Closed);
  EXPECT_TRUE(b.allow(25));
  b.record_failure(30);  // third consecutive: open
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Open);
  EXPECT_FALSE(b.allow(500));   // still cooling
  EXPECT_FALSE(b.allow(1029));  // 999 ms elapsed
  EXPECT_TRUE(b.allow(1030));   // cooldown over: half-open probe admitted
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::HalfOpen);
}

TEST(CircuitBreaker, SuccessBetweenFailuresResetsTheCount) {
  serve::CircuitBreaker b(2, 1000);
  b.record_failure(0);
  b.record_success();
  b.record_failure(10);  // only one *consecutive* failure
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Closed);
  b.record_failure(20);
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Open);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  serve::CircuitBreaker b(1, 100);
  b.record_failure(0);
  EXPECT_TRUE(b.allow(100));    // the probe
  EXPECT_FALSE(b.allow(101));   // second request must wait for its verdict
  EXPECT_FALSE(b.allow(5000));  // no matter how long
  b.record_success();
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Closed);
  EXPECT_TRUE(b.allow(5001));
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCooldown) {
  serve::CircuitBreaker b(1, 100);
  b.record_failure(0);
  EXPECT_TRUE(b.allow(100));
  b.record_failure(150);  // probe failed at t=150
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Open);
  EXPECT_FALSE(b.allow(200));  // cooldown restarted from 150
  EXPECT_TRUE(b.allow(250));
}

TEST(CircuitBreaker, WouldAllowHasNoSideEffects) {
  serve::CircuitBreaker b(1, 100);
  b.record_failure(0);
  // would_allow says a probe *could* go, repeatedly -- it must not burn the
  // probe slot the way allow() does.
  EXPECT_TRUE(b.would_allow(100));
  EXPECT_TRUE(b.would_allow(100));
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Open);
  EXPECT_TRUE(b.allow(100));
  EXPECT_FALSE(b.would_allow(101));  // probe in flight now
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::HalfOpen);
}

TEST(CircuitBreaker, ResetForgetsAllHistory) {
  serve::CircuitBreaker b(1, 1000000);
  b.record_failure(0);
  EXPECT_FALSE(b.allow(10));
  b.reset();
  EXPECT_EQ(b.state(), serve::CircuitBreaker::State::Closed);
  EXPECT_EQ(b.consecutive_failures(), 0);
  EXPECT_TRUE(b.allow(11));
}

// ---------------------------------------------------------------------------
// Respawn policy.

TEST(RespawnPolicy, BackoffLadderDoublesAndCaps) {
  serve::RespawnPolicy p(/*backoff_ms=*/200, /*cap=*/1000,
                         /*flap_window_ms=*/1000000, /*flap_limit=*/100);
  EXPECT_EQ(p.on_death(0), 200);      // first death: base backoff
  EXPECT_EQ(p.on_death(1000), 1400);  // second consecutive: 400
  EXPECT_EQ(p.on_death(2000), 2800);  // 800
  EXPECT_EQ(p.on_death(3000), 4000);  // 1600 -> capped at 1000
  EXPECT_EQ(p.on_death(4000), 5000);  // stays at the cap
}

TEST(RespawnPolicy, ReadyResetsTheLadderButNotTheDeathHistory) {
  serve::RespawnPolicy p(200, 10000, /*flap_window_ms=*/1000000,
                         /*flap_limit=*/3);
  EXPECT_EQ(p.on_death(0), 200);
  EXPECT_EQ(p.on_death(1000), 1400);
  p.on_ready();
  // Ladder back to base...
  EXPECT_EQ(p.on_death(2000), 2200);
  EXPECT_EQ(p.deaths(), 3);
  // ...but the flap window still remembers every death: one more inside the
  // window exceeds flap_limit=3 and quarantines.
  EXPECT_EQ(p.on_death(3000), -1);
  EXPECT_TRUE(p.quarantined());
}

TEST(RespawnPolicy, DeathsOutsideTheWindowSlideOff) {
  serve::RespawnPolicy p(100, 100, /*flap_window_ms=*/1000, /*flap_limit=*/2);
  EXPECT_NE(p.on_death(0), -1);
  EXPECT_NE(p.on_death(10), -1);
  // Third death, but the first two are > 1000 ms old: window holds only 1.
  EXPECT_NE(p.on_death(2000), -1);
  EXPECT_FALSE(p.quarantined());
  // Two more inside the window: 3 > flap_limit=2 -> quarantine.
  EXPECT_NE(p.on_death(2100), -1);
  EXPECT_EQ(p.on_death(2200), -1);
  EXPECT_TRUE(p.quarantined());
}

// ---------------------------------------------------------------------------
// EWMA and latency window.

TEST(Ewma, FirstSamplePrimesSubsequentOnesBlend) {
  serve::Ewma e(/*alpha=*/0.5, /*initial=*/7.0);
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 7.0);  // neutral until the first sample
  e.observe(100.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 100.0);  // priming ignores the initial
  e.observe(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
  e.observe(50.0);
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
}

TEST(LatencyWindow, NearestRankPercentilesOverTheRing) {
  serve::LatencyWindow w(/*capacity=*/8);
  EXPECT_EQ(w.percentile(0.99), 0);  // empty
  for (std::int64_t v : {10, 20, 30, 40, 50, 60, 70, 80}) w.observe(v);
  EXPECT_EQ(w.percentile(0.5), 40);
  EXPECT_EQ(w.percentile(0.99), 80);
  EXPECT_EQ(w.percentile(0.0), 10);
  // Ring wraps: the oldest samples are evicted.
  w.observe(1000);
  w.observe(1000);
  EXPECT_EQ(w.percentile(1.0), 1000);
  EXPECT_EQ(w.percentile(0.0), 30);
}

TEST(LatencyWindow, HedgeDelayFloorsUntilPrimed) {
  serve::LatencyWindow w(256);
  for (std::size_t i = 0; i + 1 < serve::LatencyWindow::kMinSamples; ++i) {
    w.observe(10000);
    // Too few samples: the trigger stays at the floor, otherwise a couple
    // of slow warmup jobs would hedge everything that follows.
    EXPECT_EQ(w.hedge_delay_ms(50, 1.5), 50) << i;
  }
  w.observe(10000);  // kMinSamples reached
  EXPECT_EQ(w.hedge_delay_ms(50, 1.5), 15000);
  EXPECT_EQ(w.hedge_delay_ms(20000, 1.5), 20000);  // floor still wins
}

// ---------------------------------------------------------------------------
// CoDel admission controller.

TEST(CoDel, DisabledControllerNeverDrops) {
  engine::CoDelController c({.target_ms = 0, .interval_ms = 100});
  EXPECT_FALSE(c.enabled());
  for (int t = 0; t < 1000; t += 10) {
    EXPECT_FALSE(c.should_drop(/*sojourn_ms=*/100000, /*now_ms=*/t));
  }
  EXPECT_EQ(c.total_drops(), 0u);
}

TEST(CoDel, TransientExcursionBelowIntervalIsTolerated) {
  engine::CoDelController c({.target_ms = 20, .interval_ms = 100});
  EXPECT_FALSE(c.should_drop(50, 0));    // above target, starts the clock
  EXPECT_FALSE(c.should_drop(50, 90));   // 90 ms above: still < interval
  EXPECT_FALSE(c.should_drop(5, 95));    // dipped under target: clock resets
  EXPECT_FALSE(c.should_drop(50, 100));  // new excursion, new clock
  EXPECT_FALSE(c.should_drop(50, 199));
  EXPECT_FALSE(c.dropping());
  EXPECT_EQ(c.total_drops(), 0u);
}

TEST(CoDel, PersistentStandingQueueShedsAtControlLawRate) {
  engine::CoDelController c({.target_ms = 20, .interval_ms = 100});
  EXPECT_FALSE(c.should_drop(50, 0));
  EXPECT_TRUE(c.should_drop(50, 100));  // one full interval above target
  EXPECT_TRUE(c.dropping());
  EXPECT_EQ(c.total_drops(), 1u);
  // Control law: next drop at 100 + 100/sqrt(1) = 200.
  EXPECT_FALSE(c.should_drop(50, 150));
  EXPECT_FALSE(c.should_drop(50, 199));
  EXPECT_TRUE(c.should_drop(50, 200));
  EXPECT_EQ(c.total_drops(), 2u);
  // Then 200 + 100/sqrt(2) ~ 270, then ~ +100/sqrt(3) ~ 57: the shed rate
  // keeps ramping while the standing queue persists.
  EXPECT_FALSE(c.should_drop(50, 269));
  EXPECT_TRUE(c.should_drop(50, 271));
  EXPECT_EQ(c.total_drops(), 3u);
  EXPECT_FALSE(c.should_drop(50, 327));
  EXPECT_TRUE(c.should_drop(50, 329));
  EXPECT_EQ(c.total_drops(), 4u);
}

TEST(CoDel, RecoveryEndsTheEpisodeImmediately) {
  engine::CoDelController c({.target_ms = 20, .interval_ms = 100});
  EXPECT_FALSE(c.should_drop(50, 0));
  EXPECT_TRUE(c.should_drop(50, 100));
  EXPECT_TRUE(c.dropping());
  // A dispatched job saw sojourn back under target: episode over, no
  // lingering shed debt.
  EXPECT_FALSE(c.should_drop(5, 120));
  EXPECT_FALSE(c.dropping());
  EXPECT_FALSE(c.should_drop(50, 130));  // must persist a full interval again
  EXPECT_FALSE(c.should_drop(50, 229));
  EXPECT_TRUE(c.should_drop(50, 230));
  EXPECT_EQ(c.total_drops(), 2u);
}

// ---------------------------------------------------------------------------
// Health-aware routing.

TEST(Router, RouteRankedIsDeterministicAndSkipsDisallowed) {
  serve::ShardRouter r(4);
  const std::vector<double> scores = {1.0, 1.0, 1.0, 1.0};
  const std::vector<bool> all(4, true);
  const int first = r.route_ranked("job-a", scores, all);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.route_ranked("job-a", scores, all), first);
  }
  // Disallowing the chosen shard must route elsewhere, deterministically.
  std::vector<bool> allowed(4, true);
  allowed[static_cast<std::size_t>(first)] = false;
  const int second = r.route_ranked("job-a", scores, allowed);
  EXPECT_NE(second, first);
  EXPECT_EQ(r.route_ranked("job-a", scores, allowed), second);
}

TEST(Router, RouteRankedPrefersClearlyLighterShards) {
  serve::ShardRouter r(3);
  const std::vector<bool> all(3, true);
  // Shard 2 is far above the tolerance band around the lightest shard; it
  // must never be picked, whatever the rendezvous hash says.
  const std::vector<double> scores = {1.0, 1.2, 100.0};
  for (int i = 0; i < 32; ++i) {
    const int got = r.route_ranked("job-" + std::to_string(i), scores, all);
    EXPECT_NE(got, 2) << "job-" << i;
  }
}

TEST(Router, RouteRankedSpreadsWithinToleranceBand) {
  serve::ShardRouter r(4);
  const std::vector<bool> all(4, true);
  const std::vector<double> even(4, 1.0);
  std::map<int, int> hits;
  for (int i = 0; i < 64; ++i) {
    hits[r.route_ranked("job-" + std::to_string(i), even, all)]++;
  }
  // Rendezvous hashing over equal scores: every shard takes some traffic.
  EXPECT_EQ(hits.size(), 4u);
}

TEST(Router, RouteRankedFallsBackWhenEveryBreakerIsOpen) {
  serve::ShardRouter r(3);
  const std::vector<double> scores = {1.0, 2.0, 3.0};
  // No shard is allowed (all breakers open): rather than refuse outright,
  // the router falls back to the full live set -- an open breaker is advice,
  // an empty cluster is an outage.
  const int got = r.route_ranked("job-x", scores, std::vector<bool>(3, false));
  EXPECT_GE(got, 0);
  EXPECT_LT(got, 3);
  // Dead shards are no fallback, though.
  r.mark_dead(0);
  r.mark_dead(1);
  r.mark_dead(2);
  EXPECT_EQ(r.route_ranked("job-x", scores, std::vector<bool>(3, false)), -1);
}

// ---------------------------------------------------------------------------
// Kill-respawn-rejoin soak against a real server.

core::FlowParams paper_params() {
  core::FlowParams p;
  p.k = 5;
  p.alpha = 2;
  p.beta = 1;
  p.num_threads = 1;
  return p;
}

struct TempRoot {
  std::string path;
  TempRoot() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/hlts_lifecycle_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : tmpl;
  }
  ~TempRoot() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

class LifecycleFixture : public ::testing::Test {
 protected:
  /// Like ServeFixture::make_server, but with the self-healing lifecycle
  /// switched on (respawn + fast backoff so the test does not sleep through
  /// production-scale ladders).  Must run before any other thread exists in
  /// the test process (the Server ctor forks the zygote).
  serve::Server& make_server(int shards, serve::LifecycleOptions lifecycle) {
    serve::ServerOptions opts;
    opts.shards = shards;
    opts.port = 0;
    opts.journal_root = root_.path;
    opts.lifecycle = lifecycle;
    server_ = std::make_unique<serve::Server>(std::move(opts));
    runner_ = std::thread([s = server_.get()] { s->run(); });
    return *server_;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
    if (runner_.joinable()) runner_.join();
    server_.reset();
  }

  TempRoot root_;
  std::unique_ptr<serve::Server> server_;
  std::thread runner_;
};

api::FlowRequestV1 make_request(const std::string& name,
                                const std::string& bench,
                                core::FlowKind kind) {
  api::FlowRequestV1 req;
  req.name = name;
  req.kind = kind;
  req.dfg = benchmarks::make_benchmark(bench);
  req.params = paper_params();
  return req;
}

serve::LifecycleOptions fast_lifecycle() {
  serve::LifecycleOptions l;
  l.respawn = true;
  l.respawn_backoff_ms = 25;
  l.respawn_backoff_cap_ms = 100;
  return l;
}

/// Polls cluster health until `pred` holds or ~20 s elapse.
template <typename Pred>
bool wait_for_cluster(serve::Client& client, Pred pred) {
  for (int i = 0; i < 400; ++i) {
    const auto h = client.health();
    if (h.ok && h.health.has_value()) {
      const util::JsonValue* cluster = h.health->find("cluster");
      if (cluster != nullptr && pred(*cluster)) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST_F(LifecycleFixture, KilledShardRespawnsRejoinsAndLosesNoJobs) {
  const int kShards = 3;
  serve::Server& server = make_server(kShards, fast_lifecycle());
  serve::Client client(server.port());

  // Pipeline a grid of jobs across all shards, then SIGKILL shard 1 while
  // they are in flight.
  const int kJobs = 12;
  std::vector<std::string> names;
  for (int j = 0; j < kJobs; ++j) {
    const std::string bench = (j % 2 == 0) ? "ex" : "diffeq";
    const std::string name = "soak-" + std::to_string(j);
    names.push_back(name);
    client.send_submit(make_request(name, bench, core::FlowKind::Ours));
  }
  serve::Client killer(server.port());
  ASSERT_TRUE(killer.kill_shard(1));

  // Exactly one reply per job, every one successful: the respawned shard
  // reclaims its journal and replays, a peer adopts anything the ticker
  // re-pointed, and the flow-token dedup guarantees no double replies.
  std::map<std::string, int> replies;
  for (int j = 0; j < kJobs; ++j) {
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.has_value()) << "connection closed after " << j;
    ASSERT_TRUE(resp->ok) << resp->error;
    ASSERT_TRUE(resp->result.has_value());
    EXPECT_EQ(resp->result->state, "succeeded") << resp->result->name;
    replies[resp->result->name]++;
  }
  for (const std::string& name : names) {
    EXPECT_EQ(replies[name], 1) << name;
  }

  // The ring must heal: the dead shard respawns, reports ready and takes
  // traffic again (live_shards back to full, respawns counted).
  EXPECT_TRUE(wait_for_cluster(client, [&](const util::JsonValue& c) {
    return c.get_int("live_shards") == kShards && c.get_int("respawns") >= 1;
  })) << "shard never rejoined";

  // The healed cluster serves new work, bit-identical to a serial run.
  const auto after = client.submit(
      make_request("after-heal", "ex", core::FlowKind::Ours));
  ASSERT_TRUE(after.ok) << after.error;
  ASSERT_TRUE(after.result.has_value());
  const core::FlowResult serial = core::run_flow(
      core::FlowKind::Ours, benchmarks::make_benchmark("ex"), paper_params());
  EXPECT_TRUE(api::FlowResultV1::from_result("after-heal", serial)
                  .design_identical(*after.result));
  EXPECT_TRUE(client.shutdown());
}

TEST_F(LifecycleFixture, CrashLoopingShardIsQuarantined) {
  serve::LifecycleOptions l = fast_lifecycle();
  l.flap_limit = 1;          // a second death inside the window quarantines
  l.flap_window_ms = 60000;  // both kills land comfortably inside
  const int kShards = 2;
  serve::Server& server = make_server(kShards, l);
  serve::Client client(server.port());

  ASSERT_TRUE(client.kill_shard(0));
  ASSERT_TRUE(wait_for_cluster(client, [&](const util::JsonValue& c) {
    return c.get_int("live_shards") == kShards && c.get_int("respawns") >= 1;
  })) << "first respawn never happened";

  ASSERT_TRUE(client.kill_shard(0));
  EXPECT_TRUE(wait_for_cluster(client, [&](const util::JsonValue& c) {
    return c.get_int("quarantined_shards") == 1;
  })) << "second death did not quarantine";

  // The quarantined shard stays down -- no respawn flapping -- and the rest
  // of the ring keeps serving.
  const auto resp = client.submit(
      make_request("post-quarantine", "ex", core::FlowKind::Ours));
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_TRUE(resp.result.has_value());
  EXPECT_EQ(resp.result->state, "succeeded");
  const auto h = client.health();
  ASSERT_TRUE(h.ok && h.health.has_value());
  const util::JsonValue* cluster = h.health->find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("live_shards"), kShards - 1);
  EXPECT_TRUE(client.shutdown());
}

}  // namespace
}  // namespace hlts
