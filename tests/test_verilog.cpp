// Tests for the structural Verilog writer and the self-checking testbench
// generator.
#include <gtest/gtest.h>

#include "atpg/atpg.hpp"
#include "atpg/testbench.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "gates/verilog.hpp"
#include "gates/wordlib.hpp"
#include "rtl/elaborate.hpp"

namespace hlts {
namespace {

TEST(StructuralVerilog, EmitsAllPrimitiveForms) {
  gates::Netlist nl;
  auto a = nl.add_input("a");
  auto b = nl.add_input("b");
  auto g_and = nl.add_gate(gates::GateKind::And, {a, b});
  auto g_not = nl.add_gate(gates::GateKind::Not, {a});
  auto g_xor = nl.add_gate(gates::GateKind::Xor, {g_and, g_not});
  auto g_mux = nl.add_gate(gates::GateKind::Mux, {a, g_xor, b});
  auto d = nl.add_dff("r");
  nl.connect_dff(d, g_mux);
  nl.add_output(d, "o");

  const std::string v = gates::to_structural_verilog(nl, "prim");
  EXPECT_NE(v.find("module prim"), std::string::npos);
  EXPECT_NE(v.find("and g"), std::string::npos);
  EXPECT_NE(v.find("not g"), std::string::npos);
  EXPECT_NE(v.find("xor g"), std::string::npos);
  EXPECT_NE(v.find("? "), std::string::npos);  // mux as conditional assign
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(StructuralVerilog, SanitizesPortNames) {
  gates::Netlist nl;
  auto a = nl.add_input("in_x[3]");
  nl.add_output(a, "out_y[0]");
  const std::string v = gates::to_structural_verilog(nl, "ports");
  EXPECT_EQ(v.find('['), v.find("[\n"));  // no raw brackets in port names
  EXPECT_NE(v.find("in_x_3_"), std::string::npos);
  EXPECT_NE(v.find("out_y_0_"), std::string::npos);
}

TEST(Testbench, GeneratedForRealDesignAndChecksOutputs) {
  dfg::Dfg g = benchmarks::make_paulin();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  rtl::Elaboration elab = rtl::elaborate(design);
  atpg::AtpgResult r = atpg::run_atpg(elab.netlist, design.steps() + 1, {});
  ASSERT_FALSE(r.test_set.empty());

  const std::string tb =
      atpg::to_verilog_testbench(elab.netlist, "paulin", r.test_set);
  EXPECT_NE(tb.find("module paulin_tb"), std::string::npos);
  EXPECT_NE(tb.find("paulin dut"), std::string::npos);
  EXPECT_NE(tb.find("TESTBENCH PASSED"), std::string::npos);
  // One reset assignment per sequence cycle; at least one binary check.
  EXPECT_NE(tb.find("reset = 1'b1;"), std::string::npos);
  EXPECT_NE(tb.find("check(1'b0"), std::string::npos);
  // X responses are emitted as unchecked placeholders.
  EXPECT_NE(tb.find("check(1'bx"), std::string::npos);
}

}  // namespace
}  // namespace hlts
