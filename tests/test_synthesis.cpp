// Unit tests for the core algorithm layer: the rescheduler (SR1/SR2 +
// critical-path fallback) and Algorithm 1's iterative merger loop.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/resched.hpp"
#include "core/synthesis.hpp"

namespace hlts {
namespace {

using core::OrderStrategy;
using etpn::Binding;

TEST(Resched, NoMergersYieldsAsap) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule hint = sched::asap(g);
  Binding b = Binding::default_binding(g);
  auto out = core::reschedule(g, b, hint, OrderStrategy::Testability);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule, hint);
}

TEST(Resched, ModuleMergerSeparatesSteps) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule hint = sched::asap(g);
  Binding b = Binding::default_binding(g);
  // N21, N22 both sit in step 1; merging their modules forces a split.
  b.merge_modules(g, b.module_of(*g.find_op("N21")),
                  b.module_of(*g.find_op("N22")));
  auto out = core::reschedule(g, b, hint, OrderStrategy::Testability);
  ASSERT_TRUE(out.feasible);
  EXPECT_NE(out.schedule.step(*g.find_op("N21")),
            out.schedule.step(*g.find_op("N22")));
  EXPECT_TRUE(core::schedule_respects_binding(g, b, out.schedule));
}

TEST(Resched, RegisterMergerSeparatesLifetimes) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule hint = sched::asap(g);
  Binding b = Binding::default_binding(g);
  // u (born S1, dies S2) and z (born S1, dies S2) overlap; merging their
  // registers forces an ordering (u's last use before z's definition).
  b.merge_regs(b.reg_of(*g.find_var("u")), b.reg_of(*g.find_var("z")));
  auto out = core::reschedule(g, b, hint, OrderStrategy::Testability);
  ASSERT_TRUE(out.feasible);
  EXPECT_TRUE(core::schedule_respects_binding(g, b, out.schedule));
}

TEST(Resched, TwoPrimaryInputsInOneRegisterInfeasible) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule hint = sched::asap(g);
  Binding b = Binding::default_binding(g);
  b.merge_regs(b.reg_of(*g.find_var("a")), b.reg_of(*g.find_var("b")));
  auto out = core::reschedule(g, b, hint, OrderStrategy::Testability);
  EXPECT_FALSE(out.feasible);
}

TEST(Resched, ScheduleRespectsBindingCatchesViolations) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  EXPECT_TRUE(core::schedule_respects_binding(g, b, s));
  b.merge_modules(g, b.module_of(*g.find_op("N21")),
                  b.module_of(*g.find_op("N22")));
  // Both still in step 1 under the old schedule.
  EXPECT_FALSE(core::schedule_respects_binding(g, b, s));
}

TEST(Synthesis, TrajectoryShrinksHardwareMonotonically) {
  dfg::Dfg g = benchmarks::make_diffeq();
  core::SynthesisParams p;
  p.bits = 8;
  core::SynthesisResult r = core::integrated_synthesis(g, p);
  ASSERT_FALSE(r.trajectory.empty());
  // Register + module count never increases along the trajectory.
  int prev = static_cast<int>(g.num_ops()) + 20;
  for (const auto& rec : r.trajectory) {
    EXPECT_LE(rec.registers + rec.modules, prev);
    prev = rec.registers + rec.modules;
    EXPECT_LE(rec.exec_time, g.critical_path_ops() + 1);
  }
}

TEST(Synthesis, LatencyBudgetRespected) {
  dfg::Dfg g = benchmarks::make_ewf();
  core::SynthesisParams p;
  p.bits = 8;
  p.max_latency = g.critical_path_ops() + 3;
  core::SynthesisResult r = core::integrated_synthesis(g, p);
  EXPECT_LE(r.schedule.length(), p.max_latency);
  EXPECT_TRUE(core::schedule_respects_binding(g, r.binding, r.schedule));
}

TEST(Synthesis, PoliciesProduceDifferentDesigns) {
  dfg::Dfg g = benchmarks::make_dct();
  core::SynthesisParams balance;
  balance.bits = 8;
  core::SynthesisParams conn = balance;
  conn.policy = core::SelectionPolicy::Connectivity;
  conn.order = core::OrderStrategy::Plain;
  conn.compat = etpn::ModuleCompat::AluClass;
  conn.require_improvement = true;
  auto r1 = core::integrated_synthesis(g, balance);
  auto r2 = core::integrated_synthesis(g, conn);
  // Both valid...
  EXPECT_TRUE(core::schedule_respects_binding(g, r1.binding, r1.schedule));
  EXPECT_TRUE(core::schedule_respects_binding(g, r2.binding, r2.schedule));
  // ...but structurally different allocations.
  EXPECT_NE(r1.binding.num_alive_regs(), r2.binding.num_alive_regs());
}

TEST(Synthesis, KOneIsMostTestabilityGreedy) {
  // With k = 1 every committed merger is the balance-ranked best; the run
  // must still terminate and produce a consistent design.
  dfg::Dfg g = benchmarks::make_ex();
  core::SynthesisParams p;
  p.bits = 4;
  p.k = 1;
  auto r = core::integrated_synthesis(g, p);
  EXPECT_TRUE(core::schedule_respects_binding(g, r.binding, r.schedule));
  EXPECT_LT(r.binding.num_alive_modules(), 8);
}

TEST(Synthesis, RejectsBadK) {
  dfg::Dfg g = benchmarks::make_ex();
  core::SynthesisParams p;
  p.k = 0;
  EXPECT_THROW(core::integrated_synthesis(g, p), Error);
}

TEST(Synthesis, ConnectivityCandidatesOnlyPositiveCloseness) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  auto candidates = core::select_connectivity_candidates(g, b, e, 1000);
  for (const auto& c : candidates) {
    EXPECT_GT(c.score, 0);
  }
}

}  // namespace
}  // namespace hlts
