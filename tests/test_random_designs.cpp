// Property tests over randomly generated designs: every synthesis flow on
// every random DFG must produce a consistent design, and the elaborated
// machine must compute exactly what the DFG specifies.  This fuzzes the
// whole pipeline (scheduling, merger feasibility, rescheduling, RTL
// elaboration, bit-blasting, simplification, simulation).
#include <gtest/gtest.h>

#include <map>

#include "atpg/simulator.hpp"
#include "core/flows.hpp"
#include "core/resched.hpp"
#include "rtl/elaborate.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

/// Random DAG generator: `num_ops` operations over `num_inputs` primary
/// inputs, arithmetic-biased kind mix, random registered/port-direct
/// outputs.
dfg::Dfg random_dfg(std::uint64_t seed, int num_inputs, int num_ops) {
  Rng rng(seed);
  dfg::Dfg g("rand" + std::to_string(seed));
  std::vector<dfg::VarId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(g.add_input("i" + std::to_string(i)));
  }
  const dfg::OpKind kinds[] = {
      dfg::OpKind::Add, dfg::OpKind::Add, dfg::OpKind::Sub, dfg::OpKind::Sub,
      dfg::OpKind::Mul, dfg::OpKind::And, dfg::OpKind::Or,  dfg::OpKind::Xor,
      dfg::OpKind::Less};
  std::vector<dfg::VarId> produced;
  for (int i = 0; i < num_ops; ++i) {
    const dfg::OpKind kind = kinds[rng.next_below(std::size(kinds))];
    std::vector<dfg::VarId> ins;
    for (int j = 0; j < dfg::op_arity(kind); ++j) {
      ins.push_back(pool[rng.next_below(pool.size())]);
    }
    dfg::OpId op = g.add_op_new_var("N" + std::to_string(i), kind, ins,
                                    "v" + std::to_string(i));
    pool.push_back(g.op(op).output);
    produced.push_back(g.op(op).output);
  }
  // Every dead-end value becomes an output (avoids dead code); a random
  // subset is registered.
  for (dfg::VarId v : produced) {
    if (g.var(v).uses.empty()) {
      g.mark_output(v, rng.next_bool(0.5));
    }
  }
  g.validate();
  return g;
}

std::map<std::string, std::uint64_t> interpret(
    const dfg::Dfg& g, const std::map<std::string, std::uint64_t>& inputs,
    int bits) {
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::map<std::string, std::uint64_t> env;
  for (const auto& [k, v] : inputs) env[k] = v & mask;
  for (dfg::OpId op : g.topo_order()) {
    const dfg::Operation& o = g.op(op);
    auto val = [&](dfg::VarId v) { return env.at(g.var(v).name); };
    std::uint64_t a = val(o.inputs[0]);
    std::uint64_t b = o.inputs.size() > 1 ? val(o.inputs[1]) : 0;
    std::uint64_t r = 0;
    switch (o.kind) {
      case dfg::OpKind::Add: r = a + b; break;
      case dfg::OpKind::Sub: r = a - b; break;
      case dfg::OpKind::Mul: r = a * b; break;
      case dfg::OpKind::And: r = a & b; break;
      case dfg::OpKind::Or: r = a | b; break;
      case dfg::OpKind::Xor: r = a ^ b; break;
      case dfg::OpKind::Less: r = a < b ? 1 : 0; break;
      default: r = 0; break;
    }
    env[g.var(o.output).name] = r & mask;
  }
  return env;
}

class RandomDesigns : public ::testing::TestWithParam<int> {};

TEST_P(RandomDesigns, AllFlowsConsistent) {
  dfg::Dfg g = random_dfg(1000 + GetParam(), 4 + GetParam() % 4,
                          6 + (GetParam() * 7) % 15);
  for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Approach1,
                              core::FlowKind::Approach2, core::FlowKind::Ours}) {
    core::FlowResult r = core::run_flow(kind, g, {.bits = 4});
    EXPECT_TRUE(r.schedule.respects_data_deps(g));
    EXPECT_TRUE(core::schedule_respects_binding(g, r.binding, r.schedule))
        << g.name() << " flow " << core::flow_name(kind);
  }
}

TEST_P(RandomDesigns, ElaboratedMachineMatchesSpec) {
  const int bits = 5;  // deliberately odd width
  dfg::Dfg g = random_dfg(2000 + GetParam(), 5, 10);
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = bits});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, bits);
  rtl::Elaboration elab = rtl::elaborate(design);
  const auto& nl = elab.netlist;

  Rng rng(31 + GetParam());
  std::map<std::string, std::uint64_t> inputs;
  for (const rtl::RtlPort& p : design.inports()) {
    inputs[p.name] = rng.next_u64() & 0x1f;
  }
  auto expected = interpret(g, inputs, bits);

  atpg::ParallelSimulator sim(nl);
  sim.reset_state();
  auto vec = [&](bool reset) {
    atpg::TestVector v(nl.inputs().size(), false);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const std::string& name = nl.gate(nl.inputs()[i]).name;
      if (name == "reset") {
        v[i] = reset;
        continue;
      }
      const auto br = name.find('[');
      v[i] = (inputs.at(name.substr(3, br - 3)) >>
              std::stoi(name.substr(br + 1))) &
             1;
    }
    return v;
  };
  sim.step(vec(true));
  for (int c = 0; c <= design.steps() + 1; ++c) sim.step(vec(false));

  std::map<std::string, std::uint64_t> observed;
  for (gates::GateId o : nl.outputs()) {
    const std::string& name = nl.gate(o).name;
    const auto br = name.find('[');
    observed[name.substr(4, br - 4)] |=
        static_cast<std::uint64_t>(sim.plane_one(o) & 1)
        << std::stoi(name.substr(br + 1));
  }
  for (dfg::VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    if (var.is_primary_output && var.po_registered) {
      EXPECT_EQ(observed.at(var.name), expected.at(var.name))
          << g.name() << " output " << var.name;
    }
  }
}

// The incremental analysis layer must be invisible in the results: every
// flow on every random design yields the same bits whether trials run as
// merge patches (incremental=true) or full rebuilds (incremental=false).
TEST_P(RandomDesigns, IncrementalFlowMatchesFullRecompute) {
  dfg::Dfg g = random_dfg(3000 + GetParam(), 4 + GetParam() % 3,
                          7 + (GetParam() * 5) % 12);
  for (core::FlowKind kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
    core::FlowParams on{.bits = 4};
    on.incremental = true;
    core::FlowParams off{.bits = 4};
    off.incremental = false;
    core::FlowResult a = core::run_flow(kind, g, on);
    core::FlowResult b = core::run_flow(kind, g, off);
    EXPECT_EQ(a.schedule, b.schedule) << g.name();
    EXPECT_EQ(a.module_allocation, b.module_allocation) << g.name();
    EXPECT_EQ(a.register_allocation, b.register_allocation) << g.name();
    EXPECT_EQ(a.cost.total(), b.cost.total()) << g.name();
    EXPECT_EQ(a.balance_index, b.balance_index) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomDesigns, ::testing::Range(0, 12));

}  // namespace
}  // namespace hlts
