// Unit tests for the cost model: module library, floorplanner and the
// H = sum Area + sum Len x Wid estimate.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "cost/cost.hpp"
#include "etpn/etpn.hpp"
#include "sched/schedule.hpp"

namespace hlts {
namespace {

using cost::ModuleLibrary;

TEST(ModuleLibrary, AreasGrowWithWidth) {
  ModuleLibrary lib = ModuleLibrary::standard();
  for (dfg::OpKind kind : {dfg::OpKind::Add, dfg::OpKind::Mul, dfg::OpKind::Div,
                           dfg::OpKind::Less, dfg::OpKind::And}) {
    EXPECT_LT(lib.module_area(kind, 4), lib.module_area(kind, 8));
    EXPECT_LT(lib.module_area(kind, 8), lib.module_area(kind, 16));
  }
  EXPECT_LT(lib.register_area(4), lib.register_area(16));
}

TEST(ModuleLibrary, MultiplierQuadraticAdderLinear) {
  ModuleLibrary lib = ModuleLibrary::standard();
  const double add_ratio =
      lib.module_area(dfg::OpKind::Add, 16) / lib.module_area(dfg::OpKind::Add, 4);
  const double mul_ratio =
      lib.module_area(dfg::OpKind::Mul, 16) / lib.module_area(dfg::OpKind::Mul, 4);
  EXPECT_NEAR(add_ratio, 4.0, 0.01);
  EXPECT_NEAR(mul_ratio, 16.0, 0.01);
}

TEST(Floorplan, PlacesAllNodesDistinctly) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  cost::Floorplan plan =
      cost::floorplan(e.data_path, ModuleLibrary::standard(), 8);
  EXPECT_GT(plan.pitch, 0.0);
  std::set<std::pair<int, int>> seen;
  for (etpn::DpNodeId n : e.data_path.node_ids()) {
    EXPECT_TRUE(seen.insert(plan.position[n]).second) << "overlap";
  }
}

TEST(Floorplan, ConnectedNodesPlacedClose) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  const auto& dp = e.data_path;
  cost::Floorplan plan = cost::floorplan(dp, ModuleLibrary::standard(), 8);
  // Average arc length must beat the average all-pairs distance (the whole
  // point of connectivity-driven placement).
  double arc_total = 0;
  int arcs = 0;
  for (etpn::DpArcId a : dp.arc_ids()) {
    arc_total += plan.distance(dp.arc(a).from, dp.arc(a).to);
    ++arcs;
  }
  double pair_total = 0;
  int pairs = 0;
  for (etpn::DpNodeId x : dp.node_ids()) {
    for (etpn::DpNodeId y : dp.node_ids()) {
      if (x.value() < y.value()) {
        pair_total += plan.distance(x, y);
        ++pairs;
      }
    }
  }
  EXPECT_LT(arc_total / arcs, pair_total / pairs);
}

TEST(Cost, ComponentsAddUp) {
  dfg::Dfg g = benchmarks::make_diffeq();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  cost::HardwareCost h =
      cost::estimate_cost(e.data_path, ModuleLibrary::standard(), 8);
  EXPECT_GT(h.module_area, 0);
  EXPECT_GT(h.register_area, 0);
  EXPECT_EQ(h.mux_area, 0);  // default allocation: no shared ports
  EXPECT_GT(h.wire_area, 0);
  EXPECT_NEAR(h.total(),
              h.module_area + h.register_area + h.mux_area + h.wire_area,
              1e-12);
}

TEST(Cost, WidthScalesTotal) {
  dfg::Dfg g = benchmarks::make_dct();
  sched::Schedule s = sched::asap(g);
  etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  ModuleLibrary lib = ModuleLibrary::standard();
  const double h4 = cost::estimate_cost(e.data_path, lib, 4).total();
  const double h8 = cost::estimate_cost(e.data_path, lib, 8).total();
  const double h16 = cost::estimate_cost(e.data_path, lib, 16).total();
  EXPECT_LT(h4, h8);
  EXPECT_LT(h8, h16);
}

TEST(Cost, MergingModulesReducesModuleArea) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  etpn::Binding before = etpn::Binding::default_binding(g);
  etpn::Etpn e1 = etpn::build_etpn(g, s, before);
  ModuleLibrary lib = ModuleLibrary::standard();
  const double m1 = cost::estimate_cost(e1.data_path, lib, 8).module_area;

  etpn::Binding after = before;
  after.merge_modules(g, after.module_of(*g.find_op("N21")),
                      after.module_of(*g.find_op("N22")));
  etpn::Etpn e2 = etpn::build_etpn(g, s, after);
  const double m2 = cost::estimate_cost(e2.data_path, lib, 8).module_area;
  EXPECT_LT(m2, m1);
}

}  // namespace
}  // namespace hlts
