// Unit tests for the utility layer: strong ids, RNG determinism, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <new>
#include <set>
#include <stdexcept>
#include <string>

#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace hlts {
namespace {

struct FooTag {};
using FooId = Id<FooTag>;

TEST(Ids, DefaultIsInvalid) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::invalid());
}

TEST(Ids, IndexVecRoundTrip) {
  IndexVec<FooId, int> v;
  FooId a = v.push_back(10);
  FooId b = v.push_back(20);
  EXPECT_EQ(v[a], 10);
  EXPECT_EQ(v[b], 20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(a));
  EXPECT_FALSE(v.contains(FooId{7}));
}

TEST(Ids, IdRangeIteratesAll) {
  std::set<std::uint32_t> seen;
  for (FooId id : id_range<FooId>(5)) seen.insert(id.value());
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(4));
}

TEST(Ids, BoolSpecializationWorks) {
  IndexVec<FooId, bool> v(3, false);
  v[FooId{1}] = true;
  EXPECT_TRUE(v[FooId{1}]);
  EXPECT_FALSE(v[FooId{0}]);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedSamplingInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(Strings, Formatting) {
  EXPECT_EQ(format_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(format_percent(0.9066), "90.66%");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(Error, RequireMacroThrowsWithLocation) {
  try {
    HLTS_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, KindTaxonomyAndClassification) {
  EXPECT_STREQ(error_kind_name(ErrorKind::Transient), "transient");
  EXPECT_STREQ(error_kind_name(ErrorKind::Input), "input");
  EXPECT_STREQ(error_kind_name(ErrorKind::Internal), "internal");

  // Errors default to Internal (a bare contract check is a bug report).
  EXPECT_EQ(Error("x").kind(), ErrorKind::Internal);
  EXPECT_EQ(Error("x", ErrorKind::Transient).kind(), ErrorKind::Transient);

  EXPECT_EQ(classify_exception(Error("x", ErrorKind::Input)), ErrorKind::Input);
  EXPECT_EQ(classify_exception(std::bad_alloc()), ErrorKind::Transient);
  EXPECT_EQ(classify_exception(std::runtime_error("x")), ErrorKind::Internal);
}

TEST(Error, RequireInputMacroCarriesInputKind) {
  try {
    HLTS_REQUIRE_INPUT(false, "bad k");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Input);
    EXPECT_NE(std::string(e.what()).find("bad k"), std::string::npos);
  }
}

TEST(Json, WriterTracksCommasAndEscapes) {
  util::JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\n");
  w.key("n").value(42);
  w.key("b").value(true);
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().key("k").value("v").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":42,\"b\":true,"
            "\"arr\":[1,2],\"obj\":{\"k\":\"v\"}}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  util::JsonWriter w;
  w.begin_array().value(1.5).value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[1.5,null]");
}

TEST(Trace, RecordsSpansAndCountersAndExportsJson) {
  util::Trace trace;
  {
    util::Trace::Scope scope(&trace);
    ASSERT_EQ(util::Trace::current(), &trace);
    HLTS_SPAN("outer");
    util::count("widgets", 2);
    util::count("widgets");
  }
  util::TraceSnapshot snap = trace.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "outer");
  EXPECT_EQ(snap.counters.at("widgets"), 3);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"widgets\":3"), std::string::npos);
}

TEST(Trace, InstrumentationIsNoopWithoutInstalledTrace) {
  ASSERT_EQ(util::Trace::current(), nullptr);
  HLTS_SPAN("ignored");
  util::count("ignored");
}

TEST(Trace, ScopeRestoresPreviousTrace) {
  util::Trace a;
  util::Trace b;
  util::Trace::Scope outer(&a);
  {
    util::Trace::Scope inner(&b);
    util::count("inner");
  }
  EXPECT_EQ(util::Trace::current(), &a);
  util::count("outer");
  EXPECT_EQ(a.snapshot().counters.count("inner"), 0u);
  EXPECT_EQ(b.snapshot().counters.at("inner"), 1);
  EXPECT_EQ(a.snapshot().counters.at("outer"), 1);
}

}  // namespace
}  // namespace hlts
