// Tests for test-point suggestion and DFT elaboration (hold input, control
// points, observation points).
#include <gtest/gtest.h>

#include "atpg/atpg.hpp"
#include "atpg/simulator.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "rtl/elaborate.hpp"
#include "testability/test_points.hpp"

namespace hlts {
namespace {

struct Synthesized {
  dfg::Dfg g;
  core::FlowResult flow;
  rtl::RtlDesign design;
};

Synthesized synthesize(core::FlowKind kind, int bits) {
  dfg::Dfg g = benchmarks::make_diffeq();
  core::FlowResult flow = core::run_flow(kind, g, {.bits = bits});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, bits);
  return {std::move(g), std::move(flow), std::move(design)};
}

TEST(TestPoints, SuggestionsRankedByBalance) {
  Synthesized s = synthesize(core::FlowKind::Camad, 8);
  etpn::Etpn e = etpn::build_etpn(s.g, s.flow.schedule, s.flow.binding);
  testability::TestabilityAnalysis analysis(e.data_path);
  auto suggestions = testability::suggest_test_points(e, analysis, 3);
  ASSERT_GE(suggestions.size(), 2u);
  EXPECT_LE(suggestions.size(), 3u);
  for (std::size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_LE(suggestions[i - 1].balance, suggestions[i].balance);
  }
}

TEST(TestPoints, ObservationPointAddsOutputs) {
  Synthesized s = synthesize(core::FlowKind::Ours, 4);
  rtl::Elaboration plain = rtl::elaborate(s.design);
  rtl::ElaborateOptions options;
  options.test_points.push_back({rtl::RtlRegId{0}, /*control=*/false});
  rtl::Elaboration dft = rtl::elaborate(s.design, options);
  EXPECT_EQ(dft.netlist.stats().primary_outputs,
            plain.netlist.stats().primary_outputs + 4);
  EXPECT_EQ(dft.netlist.stats().primary_inputs,
            plain.netlist.stats().primary_inputs);
}

TEST(TestPoints, ControlPointAddsTestBus) {
  Synthesized s = synthesize(core::FlowKind::Ours, 4);
  rtl::Elaboration plain = rtl::elaborate(s.design);
  rtl::ElaborateOptions options;
  options.test_points.push_back({rtl::RtlRegId{0}, /*control=*/true});
  rtl::Elaboration dft = rtl::elaborate(s.design, options);
  // test_mode + 4-bit tp_in bus.
  EXPECT_EQ(dft.netlist.stats().primary_inputs,
            plain.netlist.stats().primary_inputs + 5);
  // The machine still behaves functionally with test_mode low: same PO count.
  EXPECT_EQ(dft.netlist.stats().primary_outputs,
            plain.netlist.stats().primary_outputs);
}

TEST(TestPoints, HoldInputFreezesController) {
  Synthesized s = synthesize(core::FlowKind::Ours, 4);
  rtl::Elaboration elab = [&] {
    rtl::ElaborateOptions options;
    options.test_hold = true;
    return rtl::elaborate(s.design, options);
  }();
  const auto& nl = elab.netlist;
  atpg::ParallelSimulator sim(nl);
  sim.reset_state();

  atpg::TestVector v(nl.inputs().size(), false);
  std::size_t reset_i = 0, hold_i = 0;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.gate(nl.inputs()[i]).name == "reset") reset_i = i;
    if (nl.gate(nl.inputs()[i]).name == "hold") hold_i = i;
  }
  auto state_vector = [&] {
    std::string out;
    for (auto g : elab.state) {
      out += (sim.plane_one(g) & 1) ? '1' : ((sim.plane_zero(g) & 1) ? '0' : 'X');
    }
    return out;
  };
  v[reset_i] = true;
  sim.step(v);
  v[reset_i] = false;
  sim.step(v);  // runs with state S0, advances to S1
  v[hold_i] = true;
  sim.step(v);  // state S1 visible; this edge keeps S1 (hold)
  const std::string frozen = state_vector();
  sim.step(v);
  sim.step(v);
  EXPECT_EQ(state_vector(), frozen) << "hold must freeze the controller";
  v[hold_i] = false;
  sim.step(v);
  sim.step(v);
  EXPECT_NE(state_vector(), frozen);
}

TEST(TestPoints, ObservationPointImprovesCoverageOnWorstDesign) {
  // On the connectivity-driven (worst-balance) design, inserting the top
  // suggested test points must not lower coverage -- and with a bounded
  // ATPG budget it typically raises it.
  Synthesized s = synthesize(core::FlowKind::Camad, 8);
  etpn::Etpn e = etpn::build_etpn(s.g, s.flow.schedule, s.flow.binding);
  testability::TestabilityAnalysis analysis(e.data_path);
  auto suggestions = testability::suggest_test_points(e, analysis, 2);
  ASSERT_FALSE(suggestions.empty());
  std::vector<etpn::RegId> alive = s.flow.binding.alive_regs();
  rtl::ElaborateOptions options;
  for (const auto& sug : suggestions) {
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (alive[i] == sug.reg) {
        options.test_points.push_back(
            {rtl::RtlRegId{static_cast<std::uint32_t>(i)},
             sug.kind == testability::TestPointKind::Control});
      }
    }
  }
  rtl::Elaboration plain = rtl::elaborate(s.design);
  rtl::Elaboration dft = rtl::elaborate(s.design, options);
  atpg::AtpgOptions ao;
  ao.max_rounds = 1;
  ao.sequences_per_round = 1;
  ao.podem_backtrack_limit = 12;
  auto r0 = atpg::run_atpg(plain.netlist, s.design.steps() + 1, ao);
  auto r1 = atpg::run_atpg(dft.netlist, s.design.steps() + 1, ao);
  EXPECT_GE(r1.fault_coverage, r0.fault_coverage - 0.02);
}

}  // namespace
}  // namespace hlts
