// Tests of the incremental analysis layer (src/analysis + etpn/patch +
// testability cone updates), ctest label `incremental`:
//
//  - etpn::apply_merge_patch / revert_merge_patch round-trip the data path
//    exactly (arcs, adjacency lists, aliveness, names);
//  - a merge-patched + step-refreshed graph is equal, up to the tombstone
//    id projection, to a fresh build_etpn of the merged binding;
//  - TestabilityAnalysis::update(dirty) reproduces a from-scratch analysis
//    of the patched graph bit-for-bit;
//  - analysis::DesignDelta leaves a workspace untouched after destruction;
//  - an incremental trial produces bit-identical numbers to the
//    from-scratch trial pipeline;
//  - full flows with AlgorithmOptions::incremental on and off are
//    bit-identical on every benchmark, every flow, and random designs.
#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/incremental.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "core/resched.hpp"
#include "core/synthesis.hpp"
#include "cost/cost.hpp"
#include "etpn/patch.hpp"
#include "petri/petri.hpp"
#include "sched/schedule.hpp"
#include "testability/balance.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

/// Random DAG generator (same shape as the test_random_designs fuzzer).
dfg::Dfg random_dfg(std::uint64_t seed, int num_inputs, int num_ops) {
  Rng rng(seed);
  dfg::Dfg g("rand" + std::to_string(seed));
  std::vector<dfg::VarId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(g.add_input("i" + std::to_string(i)));
  }
  const dfg::OpKind kinds[] = {
      dfg::OpKind::Add, dfg::OpKind::Add, dfg::OpKind::Sub, dfg::OpKind::Sub,
      dfg::OpKind::Mul, dfg::OpKind::And, dfg::OpKind::Or,  dfg::OpKind::Xor,
      dfg::OpKind::Less};
  std::vector<dfg::VarId> produced;
  for (int i = 0; i < num_ops; ++i) {
    const dfg::OpKind kind = kinds[rng.next_below(std::size(kinds))];
    std::vector<dfg::VarId> ins;
    for (int j = 0; j < dfg::op_arity(kind); ++j) {
      ins.push_back(pool[rng.next_below(pool.size())]);
    }
    dfg::OpId op = g.add_op_new_var("N" + std::to_string(i), kind, ins,
                                    "v" + std::to_string(i));
    pool.push_back(g.op(op).output);
    produced.push_back(g.op(op).output);
  }
  for (dfg::VarId v : produced) {
    if (g.var(v).uses.empty()) {
      g.mark_output(v, rng.next_bool(0.5));
    }
  }
  g.validate();
  return g;
}

/// Complete observable state of a data path, for exact round-trip checks.
struct DpSnapshot {
  struct Node {
    etpn::DpNodeKind kind;
    std::string name;
    bool alive;
    std::vector<etpn::DpArcId> in_arcs, out_arcs;
    bool operator==(const Node&) const = default;
  };
  struct Arc {
    etpn::DpNodeId from, to;
    int to_port;
    std::vector<int> steps;
    bool alive;
    bool operator==(const Arc&) const = default;
  };
  std::vector<Node> nodes;
  std::vector<Arc> arcs;
  std::size_t alive_nodes = 0, alive_arcs = 0;
  bool operator==(const DpSnapshot&) const = default;
};

DpSnapshot dp_snapshot(const etpn::DataPath& dp) {
  DpSnapshot s;
  for (etpn::DpNodeId n : dp.node_ids()) {
    const etpn::DpNode& node = dp.node(n);
    const util::Span<etpn::DpArcId> in = dp.in_arcs(n);
    const util::Span<etpn::DpArcId> out = dp.out_arcs(n);
    s.nodes.push_back({node.kind, node.name, dp.alive(n),
                       std::vector<etpn::DpArcId>(in.begin(), in.end()),
                       std::vector<etpn::DpArcId>(out.begin(), out.end())});
  }
  for (etpn::DpArcId a : dp.arc_ids()) {
    const etpn::DpArc& arc = dp.arc(a);
    const util::Span<int> steps = dp.steps(a);
    s.arcs.push_back({arc.from, arc.to, arc.to_port,
                      std::vector<int>(steps.begin(), steps.end()),
                      dp.alive(a)});
  }
  s.alive_nodes = dp.num_alive_nodes();
  s.alive_arcs = dp.num_alive_arcs();
  return s;
}

/// Structural snapshot of a binding's group contents.
struct BindingSnapshot {
  std::vector<std::pair<std::uint32_t, std::vector<dfg::OpId>>> modules;
  std::vector<std::pair<std::uint32_t, std::vector<dfg::VarId>>> regs;
  bool operator==(const BindingSnapshot&) const = default;
};

BindingSnapshot binding_snapshot(const etpn::Binding& b) {
  BindingSnapshot s;
  for (etpn::ModuleId m : b.alive_modules()) {
    s.modules.emplace_back(m.value(), b.module_ops(m));
  }
  for (etpn::RegId r : b.alive_regs()) {
    s.regs.emplace_back(r.value(), b.reg_vars(r));
  }
  return s;
}

/// Initial design of a DFG: ASAP schedule, identity binding, fresh ETPN.
struct Design {
  sched::Schedule s;
  etpn::Binding b;
  etpn::Etpn e;
};

Design make_design(const dfg::Dfg& g) {
  Design d;
  d.s = sched::asap(g);
  d.b = etpn::Binding::default_binding(g, etpn::ModuleCompat::ExactKind);
  d.e = etpn::build_etpn(g, d.s, d.b);
  return d;
}

std::vector<testability::MergeCandidate> all_candidates(const dfg::Dfg& g,
                                                        const Design& d) {
  testability::TestabilityAnalysis analysis(d.e.data_path);
  const int all = static_cast<int>(d.e.data_path.num_nodes() *
                                   d.e.data_path.num_nodes());
  return testability::select_balance_candidates(g, d.b, d.e, analysis, all,
                                                {});
}

class OnBenchmark : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, OnBenchmark,
                         ::testing::ValuesIn(benchmarks::benchmark_names()),
                         [](const auto& info) { return info.param; });

TEST_P(OnBenchmark, MergePatchRoundTrips) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  Design d = make_design(g);
  std::vector<testability::MergeCandidate> cands = all_candidates(g, d);
  ASSERT_FALSE(cands.empty());

  const DpSnapshot before = dp_snapshot(d.e.data_path);
  int tried = 0;
  for (const testability::MergeCandidate& cand : cands) {
    if (tried >= 8) break;
    ++tried;
    const auto [into, from] = cand.nodes(d.e);
    const std::string label = "merged";
    util::Arena arena;
    etpn::MergePatch patch =
        etpn::apply_merge_patch(d.e.data_path, arena, into, from, &label);
    EXPECT_FALSE(d.e.data_path.alive(from));
    EXPECT_EQ(d.e.data_path.node(into).name, "merged");
    EXPECT_GT(patch.approx_bytes(), 0u);
    etpn::revert_merge_patch(d.e.data_path, patch);
    EXPECT_EQ(dp_snapshot(d.e.data_path), before) << cand.description(g, d.b);
  }
}

/// Checks that the alive projection of `patched` equals the compact graph
/// `fresh`: same nodes in the same order (kind + name), same arcs in the
/// same order (mapped endpoints, port, steps).
void expect_alive_projection_equal(const etpn::DataPath& patched,
                                   const etpn::DataPath& fresh) {
  std::vector<int> node_rank(patched.num_nodes(), -1);
  std::vector<etpn::DpNodeId> alive_nodes;
  for (etpn::DpNodeId n : patched.node_ids()) {
    if (!patched.alive(n)) continue;
    node_rank[n.index()] = static_cast<int>(alive_nodes.size());
    alive_nodes.push_back(n);
  }
  ASSERT_EQ(alive_nodes.size(), fresh.num_nodes());
  for (std::size_t i = 0; i < alive_nodes.size(); ++i) {
    const etpn::DpNode& pn = patched.node(alive_nodes[i]);
    const etpn::DpNode& fn =
        fresh.node(etpn::DpNodeId{static_cast<std::uint32_t>(i)});
    EXPECT_EQ(pn.kind, fn.kind) << "node " << i;
    EXPECT_EQ(pn.name, fn.name) << "node " << i;
  }
  std::vector<etpn::DpArcId> alive_arcs;
  for (etpn::DpArcId a : patched.arc_ids()) {
    if (patched.alive(a)) alive_arcs.push_back(a);
  }
  ASSERT_EQ(alive_arcs.size(), fresh.num_arcs());
  for (std::size_t i = 0; i < alive_arcs.size(); ++i) {
    const etpn::DpArc& pa = patched.arc(alive_arcs[i]);
    const etpn::DpArc& fa =
        fresh.arc(etpn::DpArcId{static_cast<std::uint32_t>(i)});
    EXPECT_EQ(node_rank[pa.from.index()], static_cast<int>(fa.from.value()))
        << "arc " << i;
    EXPECT_EQ(node_rank[pa.to.index()], static_cast<int>(fa.to.value()))
        << "arc " << i;
    EXPECT_EQ(pa.to_port, fa.to_port) << "arc " << i;
    const util::Span<int> psteps = patched.steps(alive_arcs[i]);
    const util::Span<int> fsteps =
        fresh.steps(etpn::DpArcId{static_cast<std::uint32_t>(i)});
    EXPECT_TRUE(std::equal(psteps.begin(), psteps.end(), fsteps.begin(),
                           fsteps.end()))
        << "arc " << i;
  }
}

TEST_P(OnBenchmark, PatchedGraphMatchesFreshBuild) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  Design d = make_design(g);
  std::vector<testability::MergeCandidate> cands = all_candidates(g, d);
  ASSERT_FALSE(cands.empty());

  int checked = 0;
  for (const testability::MergeCandidate& cand : cands) {
    if (checked >= 5) break;
    etpn::Binding merged = d.b;
    cand.apply(g, merged);
    core::ReschedOutcome r =
        core::reschedule(g, merged, d.s, core::OrderStrategy::Testability);
    if (!r.feasible) continue;
    ++checked;

    etpn::Etpn patched = d.e;
    const auto [into, from] = cand.nodes(patched);
    const std::string label = cand.merged_label(g, merged);
    util::Arena arena;
    etpn::apply_merge_patch(patched.data_path, arena, into, from, &label);
    etpn::refresh_etpn_steps(patched, g, r.schedule, merged);

    etpn::Etpn fresh = etpn::build_etpn(g, r.schedule, merged);
    expect_alive_projection_equal(patched.data_path, fresh.data_path);
    EXPECT_EQ(petri::critical_path(patched.control).length,
              petri::critical_path(fresh.control).length);
  }
  EXPECT_GT(checked, 0) << "no feasible candidate on " << GetParam();
}

TEST_P(OnBenchmark, TestabilityUpdateEqualsFromScratch) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  Design d = make_design(g);
  std::vector<testability::MergeCandidate> cands = all_candidates(g, d);
  ASSERT_FALSE(cands.empty());

  int checked = 0;
  for (const testability::MergeCandidate& cand : cands) {
    if (checked >= 5) break;
    ++checked;
    etpn::Etpn patched = d.e;  // private copy; the patch is not reverted
    testability::TestabilityAnalysis incremental(patched.data_path);
    const auto [into, from] = cand.nodes(patched);
    util::Arena arena;
    etpn::apply_merge_patch(patched.data_path, arena, into, from);
    const testability::TestabilityAnalysis::UpdateStats stats =
        incremental.update({into});
    EXPECT_GT(stats.node_visits, 0);

    const testability::TestabilityAnalysis scratch(patched.data_path);
    for (etpn::DpArcId a : patched.data_path.arc_ids()) {
      if (!patched.data_path.alive(a)) continue;
      EXPECT_EQ(incremental.line_controllability(a).comb,
                scratch.line_controllability(a).comb)
          << "cc arc " << a.value();
      EXPECT_EQ(incremental.line_controllability(a).seq,
                scratch.line_controllability(a).seq)
          << "cc arc " << a.value();
      EXPECT_EQ(incremental.line_observability(a).comb,
                scratch.line_observability(a).comb)
          << "co arc " << a.value();
      EXPECT_EQ(incremental.line_observability(a).seq,
                scratch.line_observability(a).seq)
          << "co arc " << a.value();
    }
    EXPECT_EQ(incremental.balance_index(), scratch.balance_index());
  }
}

TEST_P(OnBenchmark, DesignDeltaRestoresWorkspace) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  core::SynthesisParams p;
  analysis::IncrementalContext ctx(g, p.library, p.bits);
  Design d = make_design(g);
  ctx.attach(d.s, d.b);
  std::vector<testability::MergeCandidate> cands = all_candidates(g, d);
  ASSERT_FALSE(cands.empty());

  std::unique_ptr<analysis::TrialWorkspace> ws = ctx.checkout();
  const DpSnapshot dp_before = dp_snapshot(ws->etpn.data_path);
  const BindingSnapshot b_before = binding_snapshot(ws->binding);
  for (std::size_t i = 0; i < cands.size() && i < 6; ++i) {
    {
      analysis::DesignDelta delta(g, *ws, cands[i]);
      EXPECT_NE(dp_snapshot(ws->etpn.data_path), dp_before);
    }
    EXPECT_EQ(dp_snapshot(ws->etpn.data_path), dp_before);
    EXPECT_EQ(binding_snapshot(ws->binding), b_before);
  }
  ctx.checkin(std::move(ws));
}

TEST_P(OnBenchmark, IncrementalTrialMatchesFullTrial) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  core::SynthesisParams p;
  Design d = make_design(g);
  const int max_latency = g.critical_path_ops() + 1;
  analysis::IncrementalContext ctx(g, p.library, p.bits);
  ctx.attach(d.s, d.b);

  std::vector<testability::MergeCandidate> cands = all_candidates(g, d);
  ASSERT_FALSE(cands.empty());
  for (std::size_t i = 0; i < cands.size() && i < 10; ++i) {
    const testability::MergeCandidate& cand = cands[i];
    // Full pipeline: binding copy -> reschedule -> fresh ETPN -> cost.
    etpn::Binding full_b = d.b;
    cand.apply(g, full_b);
    core::ReschedOutcome full_r =
        core::reschedule(g, full_b, d.s, core::OrderStrategy::Testability);
    double full_cost = 0;
    const bool full_feasible =
        full_r.feasible && full_r.schedule.length() <= max_latency;
    if (full_feasible) {
      etpn::Etpn full_e = etpn::build_etpn(g, full_r.schedule, full_b);
      full_cost =
          cost::estimate_cost(full_e.data_path, p.library, p.bits).total();
    }

    // Incremental pipeline: workspace patch -> premerged reschedule ->
    // tombstone-aware cost.
    std::unique_ptr<analysis::TrialWorkspace> ws = ctx.checkout();
    bool inc_feasible = false;
    double inc_cost = 0;
    int inc_len = 0;
    {
      analysis::DesignDelta delta(g, *ws, cand);
      core::ReschedOutcome inc_r = core::reschedule(
          g, ws->binding, d.s, core::OrderStrategy::Testability, &ws->etpn);
      inc_feasible = inc_r.feasible && inc_r.schedule.length() <= max_latency;
      if (inc_feasible) {
        inc_len = inc_r.schedule.length();
        inc_cost = cost::estimate_cost(ws->etpn.data_path, p.library, p.bits,
                                       ws->cost)
                       .total();
        EXPECT_EQ(inc_r.schedule, full_r.schedule);
      }
    }
    ctx.checkin(std::move(ws));

    EXPECT_EQ(inc_feasible, full_feasible) << cand.description(g, d.b);
    if (full_feasible && inc_feasible) {
      EXPECT_EQ(inc_len, full_r.schedule.length());
      EXPECT_EQ(inc_cost, full_cost) << cand.description(g, d.b);
    }
  }
}

TEST_P(OnBenchmark, CommittedStatePassesAuditAndMatchesScratch) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  core::SynthesisParams p;
  p.incremental = true;
  p.audit = true;  // tombstone-aware audit runs after every commit
  core::SynthesisResult inc = core::integrated_synthesis(g, p);
  p.incremental = false;
  core::SynthesisResult full = core::integrated_synthesis(g, p);
  EXPECT_EQ(inc.schedule, full.schedule);
  EXPECT_EQ(inc.exec_time, full.exec_time);
  EXPECT_EQ(inc.cost.total(), full.cost.total());
  EXPECT_EQ(inc.iterations, full.iterations);
  EXPECT_EQ(inc.stop_reason, full.stop_reason);
  ASSERT_EQ(inc.trajectory.size(), full.trajectory.size());
  for (std::size_t i = 0; i < inc.trajectory.size(); ++i) {
    EXPECT_EQ(inc.trajectory[i].description, full.trajectory[i].description);
    EXPECT_EQ(inc.trajectory[i].delta_e, full.trajectory[i].delta_e);
    EXPECT_EQ(inc.trajectory[i].delta_h, full.trajectory[i].delta_h);
    EXPECT_EQ(inc.trajectory[i].hw_cost, full.trajectory[i].hw_cost);
    EXPECT_EQ(inc.trajectory[i].balance_index,
              full.trajectory[i].balance_index);
  }
}

class FlowGrid
    : public ::testing::TestWithParam<std::tuple<std::string, core::FlowKind>> {
};

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllFlows, FlowGrid,
    ::testing::Combine(::testing::ValuesIn(benchmarks::benchmark_names()),
                       ::testing::Values(core::FlowKind::Camad,
                                         core::FlowKind::Approach1,
                                         core::FlowKind::Approach2,
                                         core::FlowKind::Ours)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_flow" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST_P(FlowGrid, IncrementalFlowBitIdenticalToFullRecompute) {
  const auto& [bench, kind] = GetParam();
  dfg::Dfg g = benchmarks::make_benchmark(bench);
  core::FlowParams on;
  on.incremental = true;
  core::FlowParams off;
  off.incremental = false;
  core::FlowResult a = core::run_flow(kind, g, on);
  core::FlowResult b = core::run_flow(kind, g, off);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.registers, b.registers);
  EXPECT_EQ(a.modules, b.modules);
  EXPECT_EQ(a.muxes, b.muxes);
  EXPECT_EQ(a.self_loops, b.self_loops);
  EXPECT_EQ(a.cost.total(), b.cost.total());
  EXPECT_EQ(a.balance_index, b.balance_index);
  EXPECT_EQ(a.module_allocation, b.module_allocation);
  EXPECT_EQ(a.register_allocation, b.register_allocation);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(IncrementalRandomDesigns, FlowsBitIdenticalAcrossModes) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    dfg::Dfg g = random_dfg(4200 + seed, 4 + static_cast<int>(seed % 4),
                            8 + static_cast<int>(seed) * 2);
    for (auto kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowParams on;
      on.incremental = true;
      core::FlowParams off;
      off.incremental = false;
      core::FlowResult a = core::run_flow(kind, g, on);
      core::FlowResult b = core::run_flow(kind, g, off);
      EXPECT_EQ(a.schedule, b.schedule) << "seed " << seed;
      EXPECT_EQ(a.cost.total(), b.cost.total()) << "seed " << seed;
      EXPECT_EQ(a.balance_index, b.balance_index) << "seed " << seed;
      EXPECT_EQ(a.module_allocation, b.module_allocation) << "seed " << seed;
      EXPECT_EQ(a.register_allocation, b.register_allocation)
          << "seed " << seed;
    }
  }
}

TEST(IncrementalRandomDesigns, PatchUndoRoundTripsOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    dfg::Dfg g = random_dfg(5100 + seed, 3 + static_cast<int>(seed % 5),
                            6 + static_cast<int>(seed) * 2);
    Design d = make_design(g);
    std::vector<testability::MergeCandidate> cands = all_candidates(g, d);
    const DpSnapshot before = dp_snapshot(d.e.data_path);
    for (std::size_t i = 0; i < cands.size() && i < 4; ++i) {
      const auto [into, from] = cands[i].nodes(d.e);
      util::Arena arena;
      etpn::MergePatch patch =
          etpn::apply_merge_patch(d.e.data_path, arena, into, from);
      etpn::revert_merge_patch(d.e.data_path, patch);
      EXPECT_EQ(dp_snapshot(d.e.data_path), before) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace hlts
