// Tests for the async batch synthesis engine: batch results must be
// bit-identical to direct core::run_flow calls for every engine
// configuration, cancellation must take effect within one Algorithm-1
// iteration without touching sibling jobs, and per-job failures must stay
// per-job.  This executable carries the `tsan` CTest label (alongside
// `engine`) so the cancellation/shutdown paths run under
// -fsanitize=thread: a leaked or racing worker thread fails the build's
// `ctest -L tsan` run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "engine/engine.hpp"
#include "util/error.hpp"

namespace hlts {
namespace {

core::FlowParams paper_params() {
  core::FlowParams p;
  p.k = 5;
  p.alpha = 2;
  p.beta = 1;
  return p;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const core::FlowResult& expected,
                      const core::FlowResult& actual) {
  EXPECT_EQ(expected.exec_time, actual.exec_time);
  EXPECT_EQ(expected.registers, actual.registers);
  EXPECT_EQ(expected.modules, actual.modules);
  EXPECT_EQ(expected.muxes, actual.muxes);
  EXPECT_EQ(expected.self_loops, actual.self_loops);
  EXPECT_TRUE(bits_equal(expected.cost.total(), actual.cost.total()));
  EXPECT_TRUE(bits_equal(expected.balance_index, actual.balance_index));
  EXPECT_TRUE(expected.schedule == actual.schedule);
  EXPECT_EQ(expected.module_allocation, actual.module_allocation);
  EXPECT_EQ(expected.register_allocation, actual.register_allocation);
}

std::vector<engine::FlowRequest> paper_grid() {
  std::vector<engine::FlowRequest> requests;
  for (const char* bench : {"ex", "dct", "diffeq", "ewf"}) {
    dfg::Dfg g = benchmarks::make_benchmark(bench);
    for (core::FlowKind kind :
         {core::FlowKind::Camad, core::FlowKind::Approach1,
          core::FlowKind::Approach2, core::FlowKind::Ours}) {
      engine::FlowRequest r;
      r.name = std::string(bench) + "/" + core::flow_name(kind);
      r.kind = kind;
      r.dfg = g;
      r.params = paper_params();
      requests.push_back(std::move(r));
    }
  }
  return requests;
}

// The acceptance criterion: the full 4-benchmark x 4-flow grid run through
// the engine is bit-identical to serial run_flow, for more than one
// (jobs, threads-per-job) split.
TEST(Engine, BatchMatchesSerialRunFlowAcrossThreadConfigs) {
  std::vector<engine::FlowRequest> grid = paper_grid();
  std::vector<core::FlowResult> expected;
  for (const engine::FlowRequest& r : grid) {
    core::FlowParams serial = r.params;
    serial.num_threads = 1;
    expected.push_back(core::run_flow(r.kind, *r.dfg, serial));
  }

  for (const engine::EngineOptions& options :
       {engine::EngineOptions{.max_concurrent_jobs = 4, .threads_per_job = 2},
        engine::EngineOptions{.max_concurrent_jobs = 2,
                              .threads_per_job = 3}}) {
    engine::Engine eng(options);
    std::vector<engine::JobPtr> jobs = eng.submit_batch(paper_grid());
    eng.wait_all();
    ASSERT_EQ(jobs.size(), expected.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE(jobs[i]->name());
      ASSERT_EQ(jobs[i]->state(), engine::JobState::Succeeded)
          << jobs[i]->error();
      ASSERT_TRUE(jobs[i]->result().has_value());
      expect_identical(expected[i], *jobs[i]->result());
    }
  }
}

TEST(Engine, CancellationStopsWithinOneIterationAndSparesSiblings) {
  engine::Engine eng({.max_concurrent_jobs = 2, .threads_per_job = 1});

  dfg::Dfg ewf = benchmarks::make_benchmark("ewf");
  engine::FlowRequest victim{.name = "victim",
                             .kind = core::FlowKind::Ours,
                             .dfg = ewf,
                             .params = paper_params()};
  engine::FlowRequest sibling{.name = "sibling",
                              .kind = core::FlowKind::Ours,
                              .dfg = benchmarks::make_benchmark("diffeq"),
                              .params = paper_params()};

  // Cancel from the first progress callback: the merger loop must stop at
  // the next iteration boundary, i.e. at most one further record.  The
  // callback fires on a worker thread possibly before submit() returns, so
  // the handle is published under a mutex the callback takes first.
  std::mutex handle_mutex;
  engine::JobPtr victim_job;
  std::atomic<int> records_at_cancel{-1};
  engine::JobOptions cancel_on_first;
  cancel_on_first.on_iteration = [&](const core::IterationRecord&) {
    std::lock_guard<std::mutex> lock(handle_mutex);
    records_at_cancel.store(1, std::memory_order_relaxed);
    victim_job->cancel();
  };
  {
    std::lock_guard<std::mutex> lock(handle_mutex);
    victim_job = eng.submit(std::move(victim), cancel_on_first);
  }
  engine::JobPtr sibling_job = eng.submit(std::move(sibling));
  eng.wait_all();

  EXPECT_EQ(victim_job->state(), engine::JobState::Cancelled);
  EXPECT_EQ(records_at_cancel.load(), 1);
  // One committed merger before the cancel, none after the boundary check.
  EXPECT_LE(victim_job->progress().size(), 1u);
  // The partial design is still a fully consistent FlowResult.
  ASSERT_TRUE(victim_job->result().has_value());
  EXPECT_GT(victim_job->result()->exec_time, 0);

  // The sibling is untouched: same result a direct serial call produces.
  ASSERT_EQ(sibling_job->state(), engine::JobState::Succeeded);
  core::FlowParams serial = paper_params();
  serial.num_threads = 1;
  expect_identical(core::run_flow(core::FlowKind::Ours,
                                  benchmarks::make_benchmark("diffeq"), serial),
                   *sibling_job->result());
}

TEST(Engine, CancelBeforeStartSkipsTheRun) {
  engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 1});
  // The first job occupies the single worker long enough for the second to
  // still be pending when it is cancelled.
  engine::JobPtr busy = eng.submit(engine::FlowRequest{.name = "busy",
                                    .kind = core::FlowKind::Ours,
                                    .dfg = benchmarks::make_benchmark("ewf"),
                                    .params = paper_params()});
  engine::JobPtr doomed = eng.submit(engine::FlowRequest{.name = "doomed",
                                      .kind = core::FlowKind::Ours,
                                      .dfg = benchmarks::make_benchmark("ex"),
                                      .params = paper_params()});
  doomed->cancel();
  eng.wait_all();
  EXPECT_EQ(busy->state(), engine::JobState::Succeeded);
  EXPECT_EQ(doomed->state(), engine::JobState::Cancelled);
  EXPECT_FALSE(doomed->result().has_value());
  EXPECT_EQ(doomed->wall_ms(), 0.0);
  EXPECT_TRUE(doomed->progress().empty());
}

TEST(Engine, TimeoutCancelsAtIterationBoundary) {
  engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 1});
  engine::JobOptions options;
  options.timeout = std::chrono::milliseconds(1);
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "deadline",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = benchmarks::make_benchmark("ewf"),
                                   .params = paper_params()},
                                  options);
  job->wait();
  EXPECT_EQ(job->state(), engine::JobState::TimedOut);
  ASSERT_TRUE(job->result().has_value());  // partial but consistent design
}

TEST(Engine, ParseFailureFailsOnlyThatJob) {
  engine::Engine eng({.max_concurrent_jobs = 2, .threads_per_job = 1});
  engine::FlowRequest bad;
  bad.name = "bad";
  bad.source = "design d {\n  input a;\n  output register s;\n  s = a $ a;\n}";
  engine::FlowRequest good;
  good.name = "good";
  good.source =
      "design d {\n  input a, b;\n  output register s;\n  s = a * b + a;\n}";
  std::vector<engine::JobPtr> jobs =
      eng.submit_batch({std::move(bad), std::move(good)});
  eng.wait_all();

  EXPECT_EQ(jobs[0]->state(), engine::JobState::Failed);
  EXPECT_NE(jobs[0]->error().find("4"), std::string::npos);  // line number
  EXPECT_FALSE(jobs[0]->result().has_value());

  EXPECT_EQ(jobs[1]->state(), engine::JobState::Succeeded);
  EXPECT_TRUE(jobs[1]->error().empty());
  ASSERT_TRUE(jobs[1]->result().has_value());
  EXPECT_GT(jobs[1]->result()->modules, 0);
}

TEST(Engine, SynthesisErrorBecomesFailedState) {
  engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 1});
  core::FlowParams params = paper_params();
  params.k = 0;  // trips the synthesis contract check on the worker thread
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "infeasible",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = benchmarks::make_benchmark("ex"),
                                   .params = params});
  job->wait();
  EXPECT_EQ(job->state(), engine::JobState::Failed);
  EXPECT_FALSE(job->error().empty());
}

TEST(Engine, StreamsProgressAndRecordsTrace) {
  engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 2});
  std::atomic<int> callbacks{0};
  engine::JobOptions options;
  options.on_iteration = [&](const core::IterationRecord& rec) {
    callbacks.fetch_add(1, std::memory_order_relaxed);
    EXPECT_FALSE(rec.description.empty());
  };
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "traced",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = benchmarks::make_benchmark("ex"),
                                   .params = paper_params()},
                                  options);
  job->wait();
  ASSERT_EQ(job->state(), engine::JobState::Succeeded);
  EXPECT_GT(callbacks.load(), 0);
  EXPECT_EQ(static_cast<std::size_t>(callbacks.load()),
            job->progress().size());

  // The per-job trace saw the Algorithm-1 phases and counted the mergers.
  const util::TraceSnapshot& trace = job->trace();
  EXPECT_EQ(trace.counters.at("synth.mergers"),
            static_cast<std::int64_t>(job->progress().size()));
  bool saw_iteration_span = false;
  for (const util::SpanRecord& s : trace.spans) {
    if (s.name == "synth.iteration") saw_iteration_span = true;
  }
  EXPECT_TRUE(saw_iteration_span);
  EXPECT_GT(job->wall_ms(), 0.0);
}

TEST(Engine, MetricsCountJobStatesAndSpanPerJob) {
  engine::Engine eng({.max_concurrent_jobs = 2, .threads_per_job = 1});
  engine::FlowRequest ok{.name = "ok",
                         .kind = core::FlowKind::Approach1,
                         .dfg = benchmarks::make_benchmark("ex"),
                         .params = paper_params()};
  engine::FlowRequest broken;
  broken.name = "broken";
  broken.source = "not a design";
  std::vector<engine::JobPtr> jobs =
      eng.submit_batch({std::move(ok), std::move(broken)});
  eng.wait_all();

  util::TraceSnapshot m = eng.metrics();
  EXPECT_EQ(m.counters.at("jobs.submitted"), 2);
  EXPECT_EQ(m.counters.at("jobs.succeeded"), 1);
  EXPECT_EQ(m.counters.at("jobs.failed"), 1);
  std::size_t job_spans = 0;
  for (const util::SpanRecord& s : m.spans) {
    if (s.name.rfind("job.", 0) == 0) ++job_spans;
  }
  EXPECT_EQ(job_spans, 2u);
  (void)jobs;
}

TEST(Engine, AutoNamesAndOptionDefaults) {
  engine::Engine eng;
  EXPECT_GE(eng.max_concurrent_jobs(), 1);
  EXPECT_GE(eng.threads_per_job(), 1);
  engine::FlowRequest r;
  r.kind = core::FlowKind::Approach2;
  r.dfg = benchmarks::make_benchmark("ex");
  engine::JobPtr job = eng.submit(std::move(r));
  job->wait();
  EXPECT_EQ(job->state(), engine::JobState::Succeeded);
  EXPECT_NE(job->name().find("Approach 2"), std::string::npos);
}

TEST(Engine, DestructorDrainsPendingJobs) {
  std::vector<engine::JobPtr> jobs;
  {
    engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 1});
    for (const char* bench : {"ex", "diffeq", "ex", "diffeq"}) {
      jobs.push_back(eng.submit(engine::FlowRequest{.name = bench,
                                 .kind = core::FlowKind::Ours,
                                 .dfg = benchmarks::make_benchmark(bench),
                                 .params = paper_params()}));
    }
    // No wait_all: the destructor must finish every submitted job and join
    // all workers before returning.
  }
  for (const engine::JobPtr& job : jobs) {
    EXPECT_EQ(job->state(), engine::JobState::Succeeded) << job->error();
  }
}

// The anytime acceptance criterion: a job cancelled after k committed
// iterations holds a Partial result bit-identical to a clean run capped at
// max_iterations = k -- across several cut points and thread configs.
TEST(Engine, CancelledAfterKIterationsMatchesCappedRun) {
  dfg::Dfg g = benchmarks::make_benchmark("diffeq");
  for (const int cut : {1, 2}) {
    core::FlowParams capped = paper_params();
    capped.num_threads = 1;
    capped.max_iterations = cut;
    const core::FlowResult reference =
        core::run_flow(core::FlowKind::Ours, g, capped);
    ASSERT_EQ(reference.iterations, cut);
    ASSERT_EQ(reference.completeness, core::Completeness::Partial);
    ASSERT_EQ(reference.stop_reason, "iteration_budget");

    for (const int threads : {1, 2}) {
      SCOPED_TRACE("cut=" + std::to_string(cut) +
                   " threads=" + std::to_string(threads));
      engine::Engine eng(
          {.max_concurrent_jobs = 1, .threads_per_job = threads});
      std::mutex handle_mutex;
      engine::JobPtr job;
      std::atomic<int> records{0};
      engine::JobOptions options;
      options.on_iteration = [&](const core::IterationRecord&) {
        if (records.fetch_add(1, std::memory_order_relaxed) + 1 == cut) {
          std::lock_guard<std::mutex> lock(handle_mutex);
          job->cancel();
        }
      };
      {
        std::lock_guard<std::mutex> lock(handle_mutex);
        job = eng.submit(engine::FlowRequest{.name = "cut",
                          .kind = core::FlowKind::Ours,
                          .dfg = g,
                          .params = paper_params()},
                         options);
      }
      job->wait();

      ASSERT_EQ(job->state(), engine::JobState::Cancelled);
      ASSERT_TRUE(job->result().has_value());
      const core::FlowResult& partial = *job->result();
      EXPECT_EQ(partial.completeness, core::Completeness::Partial);
      EXPECT_EQ(partial.stop_reason, "cancelled");
      EXPECT_EQ(partial.iterations, cut);
      expect_identical(reference, partial);
    }
  }
}

TEST(Engine, CompletenessTagsAndAttemptDefaults) {
  engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 1});
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "clean",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = benchmarks::make_benchmark("ex"),
                                   .params = paper_params()});
  job->wait();
  ASSERT_EQ(job->state(), engine::JobState::Succeeded);
  EXPECT_EQ(job->attempts(), 1);
  EXPECT_FALSE(job->stalled());
  ASSERT_TRUE(job->result().has_value());
  EXPECT_EQ(job->result()->completeness, core::Completeness::Full);
  EXPECT_EQ(job->result()->stop_reason, "converged");
  EXPECT_EQ(static_cast<std::size_t>(job->result()->iterations),
            job->progress().size());
  EXPECT_STREQ(core::completeness_name(core::Completeness::Full), "full");
  EXPECT_STREQ(core::completeness_name(core::Completeness::Partial),
               "partial");
}

TEST(Engine, TimedOutJobIsTaggedPartial) {
  engine::Engine eng({.max_concurrent_jobs = 1, .threads_per_job = 1});
  engine::JobOptions options;
  options.timeout = std::chrono::milliseconds(1);
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "deadline",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = benchmarks::make_benchmark("ewf"),
                                   .params = paper_params()},
                                  options);
  job->wait();
  ASSERT_EQ(job->state(), engine::JobState::TimedOut);
  ASSERT_TRUE(job->result().has_value());
  EXPECT_EQ(job->result()->completeness, core::Completeness::Partial);
  EXPECT_EQ(job->result()->stop_reason, "cancelled");  // timeout uses cancel
}

TEST(Engine, JobStateNames) {
  EXPECT_STREQ(engine::job_state_name(engine::JobState::Pending), "pending");
  EXPECT_STREQ(engine::job_state_name(engine::JobState::Succeeded),
               "succeeded");
  EXPECT_STREQ(engine::job_state_name(engine::JobState::TimedOut),
               "timed_out");
}

}  // namespace
}  // namespace hlts
