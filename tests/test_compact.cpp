// Tests for static test-set compaction.
#include <gtest/gtest.h>

#include "atpg/atpg.hpp"
#include "atpg/compact.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "rtl/elaborate.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

struct TestRig {
  rtl::Elaboration elab;
  int period;
};

TestRig make_setup() {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = 4});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, 4);
  return {rtl::elaborate(design), design.steps() + 1};
}

TEST(Compact, PreservesCoverageAndNeverGrows) {
  TestRig s = make_setup();
  const auto& nl = s.elab.netlist;
  auto universe = atpg::FaultUniverse::collapsed(nl);

  // A deliberately redundant test set: many random sequences.
  Rng rng(11);
  std::vector<atpg::TestSequence> sequences;
  for (int t = 0; t < 20; ++t) {
    atpg::TestSequence seq;
    for (int c = 0; c < 2 * s.period; ++c) {
      atpg::TestVector v(nl.inputs().size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
      if (c == 0) v[0] = true;
      seq.push_back(v);
    }
    sequences.push_back(std::move(seq));
  }

  auto r = atpg::compact_test_set(nl, sequences, universe.faults());
  EXPECT_EQ(r.faults_covered_after, r.faults_covered_before);
  EXPECT_LE(r.cycles_after, r.cycles_before);
  EXPECT_LE(r.kept.size(), sequences.size());
  EXPECT_LT(r.kept.size(), sequences.size())
      << "20 random sequences are never all essential on this design";
  // Kept indices are sorted and unique.
  for (std::size_t i = 1; i < r.kept.size(); ++i) {
    EXPECT_LT(r.kept[i - 1], r.kept[i]);
  }
}

TEST(Compact, EmptySetIsFine) {
  TestRig s = make_setup();
  auto universe = atpg::FaultUniverse::collapsed(s.elab.netlist);
  auto r = atpg::compact_test_set(s.elab.netlist, {}, universe.faults());
  EXPECT_TRUE(r.kept.empty());
  EXPECT_EQ(r.faults_covered_before, 0u);
}

TEST(Compact, OrchestratorCompactionShrinksTestLength) {
  TestRig s = make_setup();
  atpg::AtpgOptions with;
  with.compact = true;
  atpg::AtpgOptions without = with;
  without.compact = false;
  auto r1 = atpg::run_atpg(s.elab.netlist, s.period, with);
  auto r2 = atpg::run_atpg(s.elab.netlist, s.period, without);
  EXPECT_EQ(r1.detected(), r2.detected());  // same generation, same coverage
  EXPECT_LE(r1.test_cycles, r2.test_cycles);
  EXPECT_EQ(r2.test_cycles, r2.uncompacted_cycles);
  EXPECT_EQ(r1.uncompacted_cycles, r2.uncompacted_cycles);
  // The final set re-simulated must reach the reported coverage.
  atpg::FaultSimulator fsim(s.elab.netlist);
  auto universe = atpg::FaultUniverse::collapsed(s.elab.netlist);
  std::vector<atpg::Fault> remaining = universe.faults();
  for (const auto& seq : r1.test_set) fsim.drop_detected(seq, remaining);
  EXPECT_EQ(universe.size() - remaining.size(), r1.detected());
}

}  // namespace
}  // namespace hlts
