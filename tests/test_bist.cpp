// Tests for the BIST wrapper: structure, functional transparency, and
// self-test coverage.
#include <gtest/gtest.h>

#include "atpg/bist.hpp"
#include "atpg/simulator.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "rtl/elaborate.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

struct Rig {
  dfg::Dfg g;
  rtl::RtlDesign design;
};

Rig make_rig(int bits) {
  dfg::Dfg g = benchmarks::make_ex();
  core::FlowResult flow = core::run_flow(core::FlowKind::Ours, g, {.bits = bits});
  rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, flow.schedule, flow.binding, bits);
  return {std::move(g), std::move(design)};
}

rtl::Elaboration elaborate_bist(const rtl::RtlDesign& design) {
  rtl::ElaborateOptions options;
  options.bist = true;
  return rtl::elaborate(design, options);
}

TEST(Bist, AddsModeInputAndMisrOutputs) {
  Rig rig = make_rig(4);
  rtl::Elaboration plain = rtl::elaborate(rig.design);
  rtl::Elaboration bist = elaborate_bist(rig.design);
  EXPECT_EQ(bist.netlist.stats().primary_inputs,
            plain.netlist.stats().primary_inputs + 1);  // bist_mode
  EXPECT_EQ(bist.netlist.stats().primary_outputs,
            plain.netlist.stats().primary_outputs + 4);  // misr word
  EXPECT_GT(bist.netlist.stats().flip_flops,
            plain.netlist.stats().flip_flops);  // LFSRs + MISR
}

TEST(Bist, FunctionallyTransparentWhenModeLow) {
  // With bist_mode low, the wrapped machine must behave exactly like the
  // plain one on the shared outputs, cycle by cycle, under random stimulus.
  Rig rig = make_rig(4);
  rtl::Elaboration plain = rtl::elaborate(rig.design);
  rtl::Elaboration bist = elaborate_bist(rig.design);
  atpg::ParallelSimulator sim_p(plain.netlist);
  atpg::ParallelSimulator sim_b(bist.netlist);
  sim_p.reset_state();
  sim_b.reset_state();

  Rng rng(321);
  for (int cycle = 0; cycle < 30; ++cycle) {
    atpg::TestVector vp(plain.netlist.inputs().size());
    atpg::TestVector vb(bist.netlist.inputs().size(), false);
    // Drive identical values by input name; bist_mode stays 0.
    for (std::size_t i = 0; i < vp.size(); ++i) {
      vp[i] = rng.next_bool();
      const std::string& name = plain.netlist.gate(plain.netlist.inputs()[i]).name;
      for (std::size_t j = 0; j < vb.size(); ++j) {
        if (bist.netlist.gate(bist.netlist.inputs()[j]).name == name) {
          vb[j] = vp[i];
        }
      }
    }
    if (cycle == 0) {
      vp[0] = vb[0] = true;  // reset (input 0 by construction)
    }
    sim_p.step(vp);
    sim_b.step(vb);
    for (std::size_t i = 0; i < plain.netlist.outputs().size(); ++i) {
      const auto op = plain.netlist.outputs()[i];
      const std::string& name = plain.netlist.gate(op).name;
      for (auto ob : bist.netlist.outputs()) {
        if (bist.netlist.gate(ob).name != name) continue;
        EXPECT_EQ(sim_p.plane_one(op) & 1, sim_b.plane_one(ob) & 1)
            << name << " cycle " << cycle;
        EXPECT_EQ(sim_p.plane_zero(op) & 1, sim_b.plane_zero(ob) & 1)
            << name << " cycle " << cycle;
      }
    }
  }
}

TEST(Bist, SelfTestDetectsMostFaults) {
  Rig rig = make_rig(4);
  rtl::Elaboration bist = elaborate_bist(rig.design);
  atpg::BistResult r = atpg::run_bist(bist.netlist, 300);
  EXPECT_GT(r.total_faults, 500u);
  EXPECT_GT(r.coverage, 0.75) << "LFSR patterns should reach most faults";
  EXPECT_LE(r.coverage, 1.0);
  // More cycles never hurt.
  atpg::BistResult longer = atpg::run_bist(bist.netlist, 600);
  EXPECT_GE(longer.detected, r.detected);
}

TEST(Bist, RequiresBistNetlist) {
  Rig rig = make_rig(4);
  rtl::Elaboration plain = rtl::elaborate(rig.design);
  EXPECT_THROW((void)atpg::run_bist(plain.netlist, 100), Error);
}

}  // namespace
}  // namespace hlts
