// Integration tests: all four synthesis flows on all six benchmarks.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "core/resched.hpp"

namespace hlts {
namespace {

using core::FlowKind;
using core::FlowParams;
using core::FlowResult;

class FlowOnBenchmark
    : public ::testing::TestWithParam<std::tuple<std::string, FlowKind>> {};

TEST_P(FlowOnBenchmark, ProducesConsistentDesign) {
  const auto& [bench, kind] = GetParam();
  dfg::Dfg g = benchmarks::make_benchmark(bench);
  FlowResult r = core::run_flow(kind, g);

  EXPECT_TRUE(r.schedule.respects_data_deps(g));
  EXPECT_TRUE(core::schedule_respects_binding(g, r.binding, r.schedule));
  EXPECT_GE(r.exec_time, g.critical_path_ops());
  EXPECT_GE(r.registers, 1);
  EXPECT_GE(r.modules, 1);
  EXPECT_LE(r.modules, static_cast<int>(g.num_ops()));
  EXPECT_GT(r.cost.total(), 0.0);
  EXPECT_GT(r.balance_index, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlowsAllBenchmarks, FlowOnBenchmark,
    ::testing::Combine(::testing::ValuesIn(benchmarks::benchmark_names()),
                       ::testing::Values(FlowKind::Camad, FlowKind::Approach1,
                                         FlowKind::Approach2, FlowKind::Ours)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::string(core::flow_name(std::get<1>(info.param))).substr(0, 8) +
             (std::get<1>(info.param) == FlowKind::Approach1 ? "1" :
              std::get<1>(info.param) == FlowKind::Approach2 ? "2" : "");
    });

TEST(FlowComparison, OursImprovesTestabilityBalanceOverCamad) {
  // The headline qualitative claim: on every benchmark, the integrated
  // testability-driven flow ends with a better testability balance index
  // than the connectivity-driven baseline.  (The full arbiter is the gate-
  // level ATPG comparison in the benches; this is the structural proxy.)
  for (const std::string& name : benchmarks::benchmark_names()) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    FlowResult camad = core::run_flow(FlowKind::Camad, g);
    FlowResult ours = core::run_flow(FlowKind::Ours, g);
    EXPECT_GE(ours.balance_index, camad.balance_index * 0.999)
        << "benchmark " << name;
  }
}

TEST(FlowComparison, OursMatchesPaperModuleAllocationOnEx) {
  // Table 1 / Figure 2: ours shares (N21, N24), (N22, N28),
  // (N25, N27, N29) and leaves N30 alone -- 4 modules, 4 control steps.
  dfg::Dfg g = benchmarks::make_ex();
  FlowResult ours = core::run_flow(FlowKind::Ours, g, {.bits = 4});
  EXPECT_EQ(ours.modules, 4);
  EXPECT_EQ(ours.exec_time, 4);
  auto find = [&](const std::string& s) {
    for (const auto& m : ours.module_allocation) {
      if (m == s) return true;
    }
    return false;
  };
  EXPECT_TRUE(find("(*): N21, N24")) << "got different multiplier pairing";
  EXPECT_TRUE(find("(*): N22, N28"));
  EXPECT_TRUE(find("(+): N30"));
}

TEST(FlowComparison, MergingReducesHardware) {
  dfg::Dfg g = benchmarks::make_ex();
  FlowResult ours = core::run_flow(FlowKind::Ours, g);
  // Default allocation: one module per op (8), one register per
  // register-resident variable (12).  Synthesis must compact both.
  EXPECT_LT(ours.modules, 8);
  EXPECT_LT(ours.registers, 12);
}

}  // namespace
}  // namespace hlts
