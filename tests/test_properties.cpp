// Cross-cutting property tests:
//  - left-edge register packing is optimal (interval-graph coloring reaches
//    the max-live lower bound) on every benchmark and scheduler;
//  - the 64-lane parallel three-valued simulator agrees with an independent
//    scalar reference simulator on random circuits and stimuli;
//  - synthesis results are deterministic across repeated runs.
#include <gtest/gtest.h>

#include <map>

#include "alloc/alloc.hpp"
#include "atpg/simulator.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "sched/fds.hpp"
#include "sched/lifetime.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

class LeftEdgeOptimality : public ::testing::TestWithParam<std::string> {};

TEST_P(LeftEdgeOptimality, ReachesMaxLiveLowerBound) {
  dfg::Dfg g = benchmarks::make_benchmark(GetParam());
  const int latency = g.critical_path_ops() + 1;
  sched::Schedule s = sched::force_directed_schedule(g, {.latency = latency});
  sched::LifetimeTable lifetimes = sched::LifetimeTable::compute(g, s);
  etpn::Binding b = alloc::allocate(g, s, {.lee_rules = false});
  // Interval-graph coloring: first-fit on sorted intervals is optimal, so
  // the register count must equal the maximum number of simultaneously
  // live variables.
  EXPECT_EQ(b.num_alive_regs(), lifetimes.max_live()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, LeftEdgeOptimality,
                         ::testing::ValuesIn(benchmarks::benchmark_names()),
                         [](const auto& info) { return info.param; });

/// Independent scalar three-valued reference simulator.
class ReferenceSim {
 public:
  explicit ReferenceSim(const gates::Netlist& nl) : nl_(nl) {
    values_.assign(nl.num_gates(), 'x');
    state_.assign(nl.num_gates(), 'x');
  }

  void step(const atpg::TestVector& inputs) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      values_[nl_.inputs()[i].index()] = inputs[i] ? '1' : '0';
    }
    for (gates::GateId g : nl_.gate_ids()) {
      if (nl_.gate(g).kind == gates::GateKind::Const0) values_[g.index()] = '0';
      if (nl_.gate(g).kind == gates::GateKind::Const1) values_[g.index()] = '1';
      if (nl_.gate(g).kind == gates::GateKind::Dff) {
        values_[g.index()] = state_[g.index()];
      }
    }
    for (gates::GateId g : nl_.levelized()) {
      values_[g.index()] = eval(g);
    }
    for (gates::GateId d : nl_.dffs()) {
      state_[d.index()] = values_[nl_.gate(d).inputs[0].index()];
    }
  }

  [[nodiscard]] char value(gates::GateId g) const { return values_[g.index()]; }

 private:
  char eval(gates::GateId id) const {
    const gates::Gate& g = nl_.gate(id);
    auto v = [&](std::size_t i) { return values_[g.inputs[i].index()]; };
    auto inv = [](char c) { return c == 'x' ? 'x' : (c == '1' ? '0' : '1'); };
    switch (g.kind) {
      case gates::GateKind::Buf:
      case gates::GateKind::Output:
        return v(0);
      case gates::GateKind::Not:
        return inv(v(0));
      case gates::GateKind::And:
      case gates::GateKind::Nand: {
        bool any_zero = false, all_one = true;
        for (std::size_t i = 0; i < g.inputs.size(); ++i) {
          if (v(i) == '0') any_zero = true;
          if (v(i) != '1') all_one = false;
        }
        char r = any_zero ? '0' : (all_one ? '1' : 'x');
        return g.kind == gates::GateKind::Nand ? inv(r) : r;
      }
      case gates::GateKind::Or:
      case gates::GateKind::Nor: {
        bool any_one = false, all_zero = true;
        for (std::size_t i = 0; i < g.inputs.size(); ++i) {
          if (v(i) == '1') any_one = true;
          if (v(i) != '0') all_zero = false;
        }
        char r = any_one ? '1' : (all_zero ? '0' : 'x');
        return g.kind == gates::GateKind::Nor ? inv(r) : r;
      }
      case gates::GateKind::Xor:
      case gates::GateKind::Xnor: {
        if (v(0) == 'x' || v(1) == 'x') return 'x';
        char r = v(0) != v(1) ? '1' : '0';
        return g.kind == gates::GateKind::Xnor ? inv(r) : r;
      }
      case gates::GateKind::Mux: {
        if (v(0) == '0') return v(1);
        if (v(0) == '1') return v(2);
        return (v(1) != 'x' && v(1) == v(2)) ? v(1) : 'x';
      }
      default:
        return 'x';
    }
  }

  const gates::Netlist& nl_;
  std::vector<char> values_, state_;
};

TEST(SimulatorCrossCheck, ParallelAgreesWithScalarReference) {
  // Random sequential circuits, random stimulus; every gate value must
  // agree between the word-parallel and the scalar simulator.
  Rng rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    gates::Netlist nl;
    std::vector<gates::GateId> pool;
    for (int i = 0; i < 4; ++i) {
      pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    std::vector<gates::GateId> dffs;
    for (int i = 0; i < 3; ++i) {
      gates::GateId d = nl.add_dff("d" + std::to_string(i));
      dffs.push_back(d);
      pool.push_back(d);
    }
    const gates::GateKind kinds[] = {
        gates::GateKind::And,  gates::GateKind::Or,   gates::GateKind::Nand,
        gates::GateKind::Nor,  gates::GateKind::Xor,  gates::GateKind::Xnor,
        gates::GateKind::Not,  gates::GateKind::Mux,  gates::GateKind::Buf};
    for (int i = 0; i < 40; ++i) {
      const gates::GateKind kind = kinds[rng.next_below(std::size(kinds))];
      const int arity = gates::gate_arity(kind) < 0 ? 2 : gates::gate_arity(kind);
      std::vector<gates::GateId> ins;
      for (int j = 0; j < arity; ++j) {
        ins.push_back(pool[rng.next_below(pool.size())]);
      }
      pool.push_back(nl.add_gate(kind, ins));
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      nl.connect_dff(dffs[i], pool[pool.size() - 1 - i]);
    }
    nl.add_output(pool.back(), "o");
    nl.validate();

    atpg::ParallelSimulator par(nl);
    par.reset_state();
    ReferenceSim ref(nl);
    for (int cycle = 0; cycle < 20; ++cycle) {
      atpg::TestVector v(nl.inputs().size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
      par.step(v);
      ref.step(v);
      for (gates::GateId g : nl.gate_ids()) {
        const bool p1 = par.plane_one(g) & 1;
        const bool p0 = par.plane_zero(g) & 1;
        const char expect = ref.value(g);
        const char got = p1 ? '1' : (p0 ? '0' : 'x');
        ASSERT_EQ(got, expect)
            << "trial " << trial << " cycle " << cycle << " gate " << g.value();
      }
    }
  }
}

TEST(Determinism, FlowsAreBitStableAcrossRuns) {
  for (const std::string& name : {std::string("ex"), std::string("dct")}) {
    dfg::Dfg g1 = benchmarks::make_benchmark(name);
    dfg::Dfg g2 = benchmarks::make_benchmark(name);
    for (auto kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowResult a = core::run_flow(kind, g1, {.bits = 8});
      core::FlowResult b = core::run_flow(kind, g2, {.bits = 8});
      EXPECT_EQ(a.schedule, b.schedule);
      EXPECT_EQ(a.module_allocation, b.module_allocation);
      EXPECT_EQ(a.register_allocation, b.register_allocation);
      EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
    }
  }
}

// The HLTS_INCREMENTAL contract: the incremental analysis layer and the
// from-scratch pipeline are interchangeable bit-for-bit (deeper coverage in
// test_incremental.cpp; this keeps the property visible in the main suite).
TEST(Determinism, IncrementalAnalysisIsBitIdenticalToFullRecompute) {
  for (const std::string& name : {std::string("ex"), std::string("ewf")}) {
    dfg::Dfg g = benchmarks::make_benchmark(name);
    for (auto kind : {core::FlowKind::Camad, core::FlowKind::Ours}) {
      core::FlowParams on{.bits = 8};
      on.incremental = true;
      core::FlowParams off{.bits = 8};
      off.incremental = false;
      core::FlowResult a = core::run_flow(kind, g, on);
      core::FlowResult b = core::run_flow(kind, g, off);
      EXPECT_EQ(a.schedule, b.schedule);
      EXPECT_EQ(a.module_allocation, b.module_allocation);
      EXPECT_EQ(a.register_allocation, b.register_allocation);
      EXPECT_EQ(a.cost.total(), b.cost.total());
      EXPECT_EQ(a.balance_index, b.balance_index);
    }
  }
}

}  // namespace
}  // namespace hlts
