// Fault-injection tests: the util/failpoint framework itself, the anytime
// degradation contract of the synthesis loop (a Partial result at iteration
// k is bit-identical to a run capped at k), the engine's Transient-retry and
// watchdog paths, and the core/validate invariant auditor.
//
// Failpoint configuration is process-global, so every test disarms in its
// epilogue; ctest additionally runs each test in its own process (the
// binary is invoked per test via gtest_discover_tests), which keeps the
// global state from leaking between tests even on a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "core/synthesis.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "sched/lifetime.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace hlts {
namespace {

namespace fp = util::failpoint;

/// Disarms failpoints on scope exit, so a failing assertion cannot leave
/// the process armed for the rest of the test body.
struct FailpointGuard {
  ~FailpointGuard() { fp::clear(); }
};

core::SynthesisParams serial_params() {
  core::SynthesisParams p;
  p.num_threads = 1;
  return p;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const core::SynthesisResult& expected,
                      const core::SynthesisResult& actual) {
  EXPECT_EQ(expected.exec_time, actual.exec_time);
  EXPECT_TRUE(expected.schedule == actual.schedule);
  EXPECT_TRUE(bits_equal(expected.cost.total(), actual.cost.total()));
  EXPECT_EQ(expected.trajectory.size(), actual.trajectory.size());
  EXPECT_EQ(expected.binding.num_alive_modules(),
            actual.binding.num_alive_modules());
  EXPECT_EQ(expected.binding.num_alive_regs(), actual.binding.num_alive_regs());
}

TEST(Failpoints, DisabledByDefaultAndZeroStats) {
  fp::clear();
  EXPECT_FALSE(fp::armed());
  EXPECT_TRUE(fp::active().empty());
  EXPECT_TRUE(fp::stats().empty());
}

TEST(Failpoints, ConfigureParsesAndRejects) {
  FailpointGuard guard;
  std::string error;

  ASSERT_TRUE(fp::configure(
      "sched.reschedule:error:0.25:42,engine.worker:delay:1:0:20", &error))
      << error;
  EXPECT_TRUE(fp::armed());
  std::vector<fp::Spec> specs = fp::active();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "sched.reschedule");
  EXPECT_EQ(specs[0].mode, fp::Mode::Error);
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.25);
  EXPECT_EQ(specs[0].seed, 42u);
  EXPECT_EQ(specs[1].mode, fp::Mode::Delay);
  EXPECT_EQ(specs[1].param, 20);

  // Unknown site, unknown mode, and out-of-range probability all fail fast
  // and leave the previous configuration in place.
  EXPECT_FALSE(fp::configure("no.such.site:error:1:0", &error));
  EXPECT_NE(error.find("no.such.site"), std::string::npos);
  EXPECT_FALSE(fp::configure("sched.reschedule:explode:1:0", &error));
  EXPECT_FALSE(fp::configure("sched.reschedule:error:1.5:0", &error));
  EXPECT_EQ(fp::active().size(), 2u);

  fp::clear();
  EXPECT_FALSE(fp::armed());
}

TEST(Failpoints, KnownSitesCoverThePipeline) {
  const std::vector<std::string>& sites = fp::known_sites();
  for (const char* expected :
       {"frontend.parse", "sched.reschedule", "alloc.merge", "atpg.fault_sim",
        "engine.worker", "pool.task"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << expected;
  }
}

TEST(Failpoints, TriggerStreamIsDeterministic) {
  FailpointGuard guard;
  dfg::Dfg g = benchmarks::make_benchmark("ex");

  auto run_once = [&]() -> std::vector<fp::SiteStats> {
    // Probability low enough that the run usually survives a few
    // iterations; the assertion is about determinism, not the outcome.
    EXPECT_TRUE(fp::configure("sched.reschedule:error:0.05:7"));
    core::SynthesisResult r = integrated_synthesis(g, serial_params());
    (void)r;
    std::vector<fp::SiteStats> s = fp::stats();
    fp::clear();
    return s;
  };

  std::vector<fp::SiteStats> first = run_once();
  std::vector<fp::SiteStats> second = run_once();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].hits, second[0].hits);
  EXPECT_EQ(first[0].triggers, second[0].triggers);
}

// The tentpole contract: a run degraded by a fault after k committed
// iterations returns a Partial result bit-identical to a clean run capped
// at max_iterations = k.
TEST(Failpoints, DegradedPartialMatchesCappedRun) {
  FailpointGuard guard;
  dfg::Dfg g = benchmarks::make_benchmark("diffeq");

  core::SynthesisResult full = integrated_synthesis(g, serial_params());
  ASSERT_EQ(full.completeness, core::Completeness::Full);
  ASSERT_GE(full.iterations, 3) << "benchmark too small for cut points";

  for (const int cut : {1, 2}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    core::SynthesisParams capped = serial_params();
    capped.max_iterations = cut;
    core::SynthesisResult reference = integrated_synthesis(g, capped);
    EXPECT_EQ(reference.completeness, core::Completeness::Partial);
    EXPECT_EQ(reference.stop_reason, "iteration_budget");
    EXPECT_EQ(reference.iterations, cut);

    // Arm a certain, single-shot fault from the iteration hook once `cut`
    // mergers have committed: the next iteration's reschedule throws and
    // the loop must degrade to the checkpoint at `cut`.
    core::SynthesisParams faulted = serial_params();
    std::atomic<int> seen{0};
    faulted.on_iteration = [&](const core::IterationRecord&) {
      if (seen.fetch_add(1, std::memory_order_relaxed) + 1 == cut) {
        ASSERT_TRUE(fp::configure("sched.reschedule:error:1:0:1"));
      }
    };
    core::SynthesisResult degraded = integrated_synthesis(g, faulted);
    fp::clear();

    EXPECT_EQ(degraded.completeness, core::Completeness::Partial);
    EXPECT_EQ(degraded.stop_reason.rfind("degraded: ", 0), 0u)
        << degraded.stop_reason;
    EXPECT_EQ(degraded.iterations, cut);
    expect_identical(reference, degraded);
  }
}

TEST(Failpoints, BadAllocDegradesToPartial) {
  FailpointGuard guard;
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  ASSERT_TRUE(fp::configure("alloc.merge:badalloc:1:0:1"));
  core::SynthesisResult r = integrated_synthesis(g, serial_params());
  // The very first trial merge throws bad_alloc, so the loop degrades at
  // iteration 0 with the (valid) initial schedule/allocation.
  EXPECT_EQ(r.completeness, core::Completeness::Partial);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(r.stop_reason.rfind("degraded: ", 0), 0u) << r.stop_reason;
  EXPECT_GT(r.exec_time, 0);
  EXPECT_TRUE(core::audit_design(g, r.schedule, r.binding).ok());
}

TEST(Failpoints, InternalErrorsAreNotAbsorbed) {
  FailpointGuard guard;
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::SynthesisParams p = serial_params();
  p.k = 0;  // trips HLTS_REQUIRE_INPUT, which must escape, not degrade
  EXPECT_THROW((void)integrated_synthesis(g, p), Error);
}

TEST(Failpoints, PoolTaskFaultPropagatesAndPoolSurvives) {
  FailpointGuard guard;
  util::ThreadPool pool(3);
  ASSERT_TRUE(fp::configure("pool.task:error:1:0:0"));
  try {
    pool.parallel_for(16, [](std::size_t) {});
    FAIL() << "expected an injected failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Transient);
    EXPECT_NE(std::string(e.what()).find("pool.task"), std::string::npos);
  }
  fp::clear();
  // The pool drains and stays usable after a task-level fault.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 16);
}

TEST(Failpoints, EngineRetriesTransientAndRecovers) {
  FailpointGuard guard;
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::FlowParams params;
  params.num_threads = 1;
  core::FlowResult expected = core::run_flow(core::FlowKind::Ours, g, params);

  // The worker site fails exactly twice; with max_retries = 2 the third
  // attempt runs clean and the job must succeed with the exact result.
  ASSERT_TRUE(fp::configure("engine.worker:error:1:0:2"));
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .threads_per_job = 1,
                      .max_retries = 2,
                      .retry_backoff = std::chrono::milliseconds(1)});
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "retried",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = g,
                                   .params = params});
  job->wait();
  fp::clear();

  EXPECT_EQ(job->state(), engine::JobState::Succeeded) << job->error();
  EXPECT_EQ(job->attempts(), 3);
  ASSERT_TRUE(job->result().has_value());
  EXPECT_EQ(job->result()->completeness, core::Completeness::Full);
  EXPECT_TRUE(expected.schedule == job->result()->schedule);
  EXPECT_EQ(expected.module_allocation, job->result()->module_allocation);
  util::TraceSnapshot metrics = eng.metrics();
  EXPECT_EQ(metrics.counters.at("jobs.retries"), 2);
}

TEST(Failpoints, RetryBudgetExhaustionFailsOnlyTheInjectedJob) {
  FailpointGuard guard;
  // Only the source-compiled job passes through frontend.parse; the
  // pre-built-DFG sibling never touches the site.
  ASSERT_TRUE(fp::configure("frontend.parse:error:1:0:0"));
  engine::Engine eng({.max_concurrent_jobs = 2,
                      .threads_per_job = 1,
                      .max_retries = 1,
                      .retry_backoff = std::chrono::milliseconds(1)});
  engine::FlowRequest doomed;
  doomed.name = "doomed";
  doomed.source =
      "design d {\n  input a, b;\n  output register s;\n  s = a * b + a;\n}";
  engine::FlowRequest healthy;
  healthy.name = "healthy";
  healthy.kind = core::FlowKind::Ours;
  healthy.dfg = benchmarks::make_benchmark("ex");
  healthy.params.num_threads = 1;
  std::vector<engine::JobPtr> jobs =
      eng.submit_batch({std::move(doomed), std::move(healthy)});
  eng.wait_all();
  fp::clear();

  EXPECT_EQ(jobs[0]->state(), engine::JobState::Failed);
  EXPECT_EQ(jobs[0]->attempts(), 2);  // 1 + max_retries
  EXPECT_NE(jobs[0]->error().find("frontend.parse"), std::string::npos);
  EXPECT_FALSE(jobs[0]->result().has_value());

  EXPECT_EQ(jobs[1]->state(), engine::JobState::Succeeded) << jobs[1]->error();
  ASSERT_TRUE(jobs[1]->result().has_value());
  EXPECT_EQ(jobs[1]->result()->completeness, core::Completeness::Full);
}

TEST(Failpoints, ParseErrorsAreInputKindAndNeverRetried) {
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .threads_per_job = 1,
                      .max_retries = 3,
                      .retry_backoff = std::chrono::milliseconds(1)});
  engine::FlowRequest bad;
  bad.name = "bad";
  bad.source = "design d {\n  input a;\n  output register s;\n  s = a $ a;\n}";
  engine::JobPtr job = eng.submit(std::move(bad));
  job->wait();
  EXPECT_EQ(job->state(), engine::JobState::Failed);
  EXPECT_EQ(job->attempts(), 1);  // Input errors must not burn retries
}

TEST(Failpoints, WatchdogFlagsAStalledJob) {
  FailpointGuard guard;
  // Every reschedule sleeps 80 ms while the stall deadline is 20 ms: the
  // first iteration's trial evaluations outlast the deadline and the
  // watchdog must flag the job, without changing its result.
  ASSERT_TRUE(fp::configure("sched.reschedule:delay:1:0:80"));
  engine::Engine eng({.max_concurrent_jobs = 1,
                      .threads_per_job = 1,
                      .stall_deadline = std::chrono::milliseconds(20)});
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::FlowParams params;
  params.num_threads = 1;
  params.max_iterations = 1;  // bound the injected delays
  engine::JobPtr job = eng.submit(engine::FlowRequest{.name = "slow",
                                   .kind = core::FlowKind::Ours,
                                   .dfg = g,
                                   .params = params});
  job->wait();
  fp::clear();

  EXPECT_TRUE(job->stalled());
  EXPECT_EQ(job->state(), engine::JobState::Succeeded) << job->error();
  EXPECT_GE(eng.metrics().counters.at("jobs.stall_flagged"), 1);

  core::FlowResult expected = core::run_flow(core::FlowKind::Ours, g, params);
  ASSERT_TRUE(job->result().has_value());
  EXPECT_TRUE(expected.schedule == job->result()->schedule);
}

TEST(Auditor, CleanDesignPasses) {
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::SynthesisParams p = serial_params();
  p.audit = true;  // audits initial state and every commit in-loop
  core::SynthesisResult r = integrated_synthesis(g, p);
  EXPECT_EQ(r.completeness, core::Completeness::Full);
  EXPECT_TRUE(core::audit_design(g, r.schedule, r.binding).ok());
  etpn::Etpn e = etpn::build_etpn(g, r.schedule, r.binding);
  EXPECT_TRUE(core::audit_etpn(g, e, r.binding).ok());
}

TEST(Auditor, CatchesRegisterLifetimeOverlap) {
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::SynthesisResult r = integrated_synthesis(g, serial_params());

  // Corrupt the binding: force-merge two registers whose variables have
  // overlapping lifetimes (merge_regs does not lifetime-check; the loop's
  // candidate filter normally does).
  const sched::LifetimeTable lifetimes =
      sched::LifetimeTable::compute(g, r.schedule);
  etpn::Binding corrupted = r.binding;
  // Find the pair first, merge after: merge_regs grows the survivor's var
  // list, which would invalidate iterators into it mid-scan.
  etpn::RegId keep = etpn::RegId::invalid();
  etpn::RegId victim = etpn::RegId::invalid();
  std::vector<etpn::RegId> regs = corrupted.alive_regs();
  for (std::size_t i = 0; i < regs.size() && !keep.valid(); ++i) {
    for (std::size_t j = i + 1; j < regs.size() && !keep.valid(); ++j) {
      for (dfg::VarId a : corrupted.reg_vars(regs[i])) {
        if (keep.valid()) break;
        for (dfg::VarId b : corrupted.reg_vars(regs[j])) {
          if (!lifetimes.disjoint(a, b)) {
            keep = regs[i];
            victim = regs[j];
            break;
          }
        }
      }
    }
  }
  ASSERT_TRUE(keep.valid()) << "no overlapping register pair found to corrupt";
  corrupted.merge_regs(keep, victim);

  core::AuditReport report = core::audit_design(g, r.schedule, corrupted);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("lifetime overlap"), std::string::npos);
  try {
    core::enforce_audit(report, "test");
    FAIL() << "expected enforce_audit to throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Internal);
  }
}

TEST(Auditor, CatchesPrecedenceViolation) {
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::SynthesisResult r = integrated_synthesis(g, serial_params());

  // Move some dependent operation into (or before) its producer's step.
  sched::Schedule corrupted = r.schedule;
  bool moved = false;
  for (dfg::OpId op : g.op_ids()) {
    for (dfg::VarId in : g.op(op).inputs) {
      const dfg::OpId def = g.var(in).def;
      if (def.valid()) {
        corrupted.set_step(op, corrupted.step(def));
        moved = true;
        break;
      }
    }
    if (moved) break;
  }
  ASSERT_TRUE(moved);

  core::AuditReport report = core::audit_design(g, corrupted, r.binding);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("precedence"), std::string::npos);
}

TEST(Auditor, CatchesDanglingEtpnArc) {
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::SynthesisResult r = integrated_synthesis(g, serial_params());
  etpn::Etpn e = etpn::build_etpn(g, r.schedule, r.binding);
  ASSERT_TRUE(core::audit_etpn(g, e, r.binding).ok());

  // Detach one arc from its destination's in-arc list: the back-link check
  // must report it as dangling.
  ASSERT_GT(e.data_path.num_arcs(), 0u);
  const etpn::DpArcId victim = *e.data_path.arc_ids().begin();
  const etpn::DpNodeId to = e.data_path.arc(victim).to;
  std::vector<etpn::DpArcId> pruned;
  for (etpn::DpArcId a : e.data_path.in_arcs(to)) {
    if (a != victim) pruned.push_back(a);
  }
  e.data_path.rewrite_in_list(to, pruned.data(),
                              static_cast<std::uint32_t>(pruned.size()));

  core::AuditReport report = core::audit_etpn(g, e, r.binding);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("in_arcs"), std::string::npos);
}

TEST(Auditor, FlowLevelAuditOptionRuns) {
  dfg::Dfg g = benchmarks::make_benchmark("ex");
  core::FlowParams params;
  params.num_threads = 1;
  params.audit = true;
  for (core::FlowKind kind :
       {core::FlowKind::Camad, core::FlowKind::Approach1,
        core::FlowKind::Approach2, core::FlowKind::Ours}) {
    SCOPED_TRACE(core::flow_name(kind));
    core::FlowResult r = core::run_flow(kind, g, params);
    EXPECT_GT(r.modules, 0);
  }
}

}  // namespace
}  // namespace hlts
