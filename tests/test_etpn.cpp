// Unit tests for the ETPN layer: bindings, merger transformations, the
// data-path graph (mux count, self-loops, sequential depth) and the ETPN
// builder.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "etpn/etpn.hpp"
#include "sched/schedule.hpp"

namespace hlts {
namespace {

using etpn::Binding;
using etpn::DpNodeKind;
using etpn::ModuleCompat;

TEST(Binding, DefaultIsOnePerOpAndVar) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding b = Binding::default_binding(g);
  b.validate(g);
  EXPECT_EQ(b.num_alive_modules(), 8);
  EXPECT_EQ(b.num_alive_regs(), 12);  // 6 PIs + u..z; s,t are port-direct
  for (dfg::OpId op : g.op_ids()) {
    EXPECT_EQ(b.module_ops(b.module_of(op)).size(), 1u);
  }
}

TEST(Binding, ModuleMergerMovesOpsAndTombstones) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding b = Binding::default_binding(g);
  auto m21 = b.module_of(*g.find_op("N21"));
  auto m22 = b.module_of(*g.find_op("N22"));
  ASSERT_TRUE(b.can_merge_modules(g, m21, m22));
  b.merge_modules(g, m21, m22);
  b.validate(g);
  EXPECT_EQ(b.num_alive_modules(), 7);
  EXPECT_FALSE(b.module_alive(m22));
  EXPECT_EQ(b.module_of(*g.find_op("N22")), m21);
  EXPECT_EQ(b.module_ops(m21).size(), 2u);
  // Merging into a tombstone is illegal.
  EXPECT_THROW(b.merge_modules(g, m22, m21), Error);
}

TEST(Binding, ExactKindVsAluClassCompat) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding exact = Binding::default_binding(g, ModuleCompat::ExactKind);
  Binding alu = Binding::default_binding(g, ModuleCompat::AluClass);
  auto sub = exact.module_of(*g.find_op("N25"));  // '-'
  auto add = exact.module_of(*g.find_op("N30"));  // '+'
  auto mul = exact.module_of(*g.find_op("N21"));  // '*'
  EXPECT_FALSE(exact.can_merge_modules(g, sub, add));
  EXPECT_TRUE(alu.can_merge_modules(g, sub, add));
  EXPECT_FALSE(alu.can_merge_modules(g, sub, mul));
}

TEST(Binding, RegisterMerger) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding b = Binding::default_binding(g);
  auto ra = b.reg_of(*g.find_var("a"));
  auto ru = b.reg_of(*g.find_var("u"));
  ASSERT_TRUE(b.can_merge_regs(ra, ru));
  b.merge_regs(ra, ru);
  b.validate(g);
  EXPECT_EQ(b.num_alive_regs(), 11);
  EXPECT_EQ(b.reg_of(*g.find_var("u")), ra);
}

TEST(Binding, PortDirectVariablesHaveNoRegister) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding b = Binding::default_binding(g);
  EXPECT_FALSE(b.reg_of(*g.find_var("s")).valid());
  EXPECT_FALSE(b.reg_of(*g.find_var("t")).valid());
}

TEST(Binding, MixedModuleLabelShowsCombinedAlu) {
  dfg::Dfg g = benchmarks::make_ex();
  Binding b = Binding::default_binding(g, ModuleCompat::AluClass);
  auto sub = b.module_of(*g.find_op("N25"));
  auto add = b.module_of(*g.find_op("N30"));
  b.merge_modules(g, sub, add);
  EXPECT_NE(b.module_label(g, sub).find("(+-)"), std::string::npos);
}

TEST(Etpn, BuildProducesConsistentStructure) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);

  // Node census: 6 in-ports, 2 out-ports, 12 registers, 8 modules.
  int inports = 0, outports = 0, regs = 0, mods = 0;
  for (etpn::DpNodeId n : e.data_path.node_ids()) {
    switch (e.data_path.node(n).kind) {
      case DpNodeKind::InPort: ++inports; break;
      case DpNodeKind::OutPort: ++outports; break;
      case DpNodeKind::Register: ++regs; break;
      case DpNodeKind::Module: ++mods; break;
    }
  }
  EXPECT_EQ(inports, 6);
  EXPECT_EQ(outports, 2);
  EXPECT_EQ(regs, 12);
  EXPECT_EQ(mods, 8);

  // Control: chain S0..S3, execution time = schedule length.
  EXPECT_EQ(e.control.num_places(), 4u);
  EXPECT_EQ(e.execution_time(), s.length());

  // Default allocation has no multiplexers and no self-loops.
  EXPECT_EQ(e.data_path.mux_count(), 0);
  EXPECT_EQ(e.data_path.self_loop_count(), 0);
}

TEST(Etpn, MergingRegistersCreatesMuxes) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  // a (from in-port) and u (from module N21) share one register: its input
  // port now has two sources.
  b.merge_regs(b.reg_of(*g.find_var("a")), b.reg_of(*g.find_var("u")));
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  EXPECT_GE(e.data_path.mux_count(), 1);
}

TEST(Etpn, SelfLoopDetected) {
  // u = a + b; v = u + c, with u and v sharing a register: the adder module
  // of v reads the register and writes it back.
  dfg::Dfg g("loopy");
  auto a = g.add_input("a");
  auto b2 = g.add_input("b");
  auto c = g.add_input("c");
  g.add_op_new_var("n1", dfg::OpKind::Add, {a, b2}, "u");
  g.add_op_new_var("n2", dfg::OpKind::Add, {*g.find_var("u"), c}, "v");
  g.mark_output(*g.find_var("v"), true);
  sched::Schedule s = sched::asap(g);
  Binding bind = Binding::default_binding(g);
  bind.merge_regs(bind.reg_of(*g.find_var("u")), bind.reg_of(*g.find_var("v")));
  etpn::Etpn e = etpn::build_etpn(g, s, bind);
  EXPECT_GE(e.data_path.self_loop_count(), 1);
}

TEST(Etpn, LoopOnConditionAddsGuardedTransitions) {
  dfg::Dfg g = benchmarks::make_diffeq();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  etpn::Etpn plain = etpn::build_etpn(g, s, b);
  etpn::Etpn looped = etpn::build_etpn(g, s, b, {.loop_on_condition = true});
  EXPECT_EQ(looped.control.num_transitions(), plain.control.num_transitions() + 2);
  // Critical path unchanged: the loop back-arc is traversed once.
  EXPECT_EQ(looped.execution_time(), plain.execution_time());
  petri::ReachabilityTree tree(looped.control);
  EXPECT_FALSE(tree.has_deadlock());
}

TEST(Etpn, SequentialDepthOnDefaultAllocation) {
  dfg::Dfg g = benchmarks::make_ex();
  sched::Schedule s = sched::asap(g);
  Binding b = Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  auto depth = e.data_path.sequential_depth();
  // PI registers: d_in 0; register u: d_in 1 (a -> N21 -> u), d_out:
  // u -> N25 -> y -> N29 -> out: 1 hop to y which feeds the out port via
  // N29/N30... max depth is small but nonzero.
  EXPECT_GT(depth.total_depth, 0);
  EXPECT_EQ(depth.unreachable, 0);
}

TEST(Etpn, ScheduleMismatchRejected) {
  dfg::Dfg ex = benchmarks::make_ex();
  dfg::Dfg dct = benchmarks::make_dct();
  sched::Schedule s = sched::asap(dct);
  Binding b = Binding::default_binding(ex);
  EXPECT_THROW(etpn::build_etpn(ex, s, b), Error);
}

}  // namespace
}  // namespace hlts
