// Data-layout tests for the trial-arena / SoA / wide-packet refactor
// (`ctest -L layout`):
//
//   - alignment audit of every POD the patch path carves from util::Arena
//     and of the wide simulation packets;
//   - bit-identity matrix: fault-sim detection over packet width
//     {64, 256, 512} x threads {1, 4} on every benchmark, and the
//     synthesis trajectory over the same widths x threads {1, 4} x
//     incremental {on, off};
//   - arena reuse across trials: the workspace arena's footprint plateaus
//     after the first merge-patch apply/revert cycle;
//   - checkpoint/resume under the SoA data path: a resumed run is
//     bit-identical to the uninterrupted one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"
#include "atpg/packet.hpp"
#include "atpg/wide_sim.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "core/flows.hpp"
#include "core/synthesis.hpp"
#include "etpn/etpn.hpp"
#include "etpn/patch.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"
#include "sched/schedule.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace hlts {
namespace {

const std::vector<std::string> kBenchmarks = {"ex",  "dct",    "diffeq",
                                              "ewf", "paulin", "tseng"};

/// Restores (or unsets) one environment variable on scope exit.
struct EnvGuard {
  std::string name;
  std::optional<std::string> saved;
  explicit EnvGuard(std::string n) : name(std::move(n)) {
    const char* v = std::getenv(name.c_str());
    if (v != nullptr) saved = v;
  }
  ~EnvGuard() {
    if (saved) {
      ::setenv(name.c_str(), saved->c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

// --- alignment audit --------------------------------------------------------

// Every POD the merge-patch undo log and its worklists carve from the
// workspace arena, plus the wide simulation packets.  The arena serves any
// alignment up to alignof(std::max_align_t); these asserts are the audit
// that no carve type needs more (and that growth-by-memcpy is legal).
template <typename T>
constexpr bool arena_safe =
    std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T> &&
    alignof(T) <= alignof(std::max_align_t);

static_assert(arena_safe<etpn::PoolSpan>);
static_assert(arena_safe<etpn::MergePatch::ArcState>);
static_assert(arena_safe<etpn::MergePatch::NodeState>);
static_assert(arena_safe<etpn::DpArcId>);
static_assert(arena_safe<etpn::DpNodeId>);
static_assert(arena_safe<int>);
static_assert(arena_safe<atpg::Packet<1>>);
static_assert(arena_safe<atpg::Packet<4>>);
static_assert(arena_safe<atpg::Packet<8>>);

// Packets are flat word arrays: W*8 bytes, word alignment, no padding --
// the layout the autovectorizer and any future arena-carved plane storage
// rely on.
static_assert(sizeof(atpg::Packet<1>) == 8);
static_assert(sizeof(atpg::Packet<4>) == 32);
static_assert(sizeof(atpg::Packet<8>) == 64);
static_assert(alignof(atpg::Packet<8>) == alignof(std::uint64_t));
static_assert(atpg::Packet<4>::kLanes == 256);
static_assert(atpg::Packet<8>::kLanes == 512);

TEST(LayoutAudit, ArenaCarvesAreAligned) {
  util::Arena arena;
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    for (int i = 0; i < 32; ++i) {
      void* p = arena.allocate(static_cast<std::size_t>(i) + 1, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align << " i=" << i;
    }
  }
  auto* spans = arena.alloc_array<etpn::PoolSpan>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(spans) %
                alignof(etpn::PoolSpan),
            0u);
  auto* packets = arena.alloc_array<atpg::Packet<8>>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packets) %
                alignof(atpg::Packet<8>),
            0u);
}

TEST(LayoutAudit, PacketLaneOpsMatchWordSemantics) {
  atpg::Packet<4> p = atpg::Packet<4>::zero();
  EXPECT_FALSE(p.any());
  p.set_lane(0);
  p.set_lane(63);
  p.set_lane(64);   // word 1 bit 0
  p.set_lane(255);  // word 3 bit 63
  EXPECT_TRUE(p.lane(0) && p.lane(63) && p.lane(64) && p.lane(255));
  EXPECT_FALSE(p.lane(1) || p.lane(128));
  EXPECT_EQ(p.w[0], (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(p.w[1], 1u);
  EXPECT_EQ(p.w[2], 0u);
  EXPECT_EQ(p.w[3], std::uint64_t{1} << 63);

  const atpg::Packet<4> ones = atpg::Packet<4>::ones();
  EXPECT_EQ(p & ones, p);
  EXPECT_EQ(p | atpg::Packet<4>::zero(), p);
  EXPECT_EQ(~(~p), p);
  EXPECT_EQ(p ^ p, atpg::Packet<4>::zero());
  EXPECT_EQ(atpg::Packet<4>::broadcast(true), ones);
  EXPECT_EQ(atpg::Packet<4>::broadcast(false), atpg::Packet<4>::zero());
  EXPECT_NE(p, ones);
}

// --- fault-sim bit-identity matrix ------------------------------------------

struct ElabFixture {
  rtl::Elaboration elab;
  std::vector<atpg::Fault> faults;
  atpg::TestSequence seq;
};

ElabFixture elaborate_benchmark(const std::string& name) {
  const dfg::Dfg g = benchmarks::make_benchmark(name);
  const core::FlowResult r =
      core::run_flow(core::FlowKind::Ours, g, {.bits = 8});
  const rtl::RtlDesign design =
      rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
  ElabFixture f{rtl::elaborate(design), {}, {}};
  f.faults = atpg::FaultUniverse::collapsed(f.elab.netlist).faults();
  Rng rng(23);
  const int cycles = 2 * (r.exec_time + 1);
  for (int c = 0; c < cycles; ++c) {
    atpg::TestVector v(f.elab.netlist.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    if (c == 0 && !v.empty()) v[0] = true;  // reset
    f.seq.push_back(v);
  }
  return f;
}

TEST(FaultSimLayout, DetectionBitIdenticalAcrossWidthsAndThreads) {
  for (const std::string& name : kBenchmarks) {
    const ElabFixture f = elaborate_benchmark(name);
    atpg::FaultSimulator reference(f.elab.netlist, /*num_threads=*/1,
                                   /*simd_width=*/64);
    const std::vector<std::size_t> expected =
        reference.detected_by(f.seq, f.faults);
    EXPECT_FALSE(expected.empty()) << name;
    for (const int width : {64, 256, 512}) {
      for (const int threads : {1, 4}) {
        atpg::FaultSimulator fsim(f.elab.netlist, threads, width);
        EXPECT_EQ(fsim.detected_by(f.seq, f.faults), expected)
            << name << " width=" << width << " threads=" << threads;
      }
    }
  }
}

TEST(FaultSimLayout, BatchCapacityDerivesFromPacketWidth) {
  static_assert(atpg::WideSimulator<1>::kLanes == 64);
  static_assert(atpg::WideSimulator<4>::kLanes == 256);
  static_assert(atpg::WideSimulator<8>::kLanes == 512);

  const ElabFixture f = elaborate_benchmark("ex");
  // The top fault lane of each width is usable; one past it is not.
  atpg::WideSimulator<4> sim(f.elab.netlist);
  sim.inject(255, f.faults.front());
  EXPECT_THROW(sim.inject(256, f.faults.front()), Error);
  EXPECT_THROW(sim.inject(0, f.faults.front()), Error);

  for (const int width : {64, 256, 512}) {
    atpg::FaultSimulator fsim(f.elab.netlist, 1, width);
    EXPECT_EQ(fsim.simd_width(), width);
  }
}

TEST(FaultSimLayout, WidthResolution) {
  EnvGuard guard("HLTS_SIMD_WIDTH");
  ::unsetenv("HLTS_SIMD_WIDTH");
  EXPECT_EQ(atpg::resolve_simd_width(0), 256);  // documented default
  EXPECT_EQ(atpg::resolve_simd_width(64), 64);
  EXPECT_EQ(atpg::resolve_simd_width(512), 512);
  EXPECT_THROW((void)atpg::resolve_simd_width(128), Error);
  ::setenv("HLTS_SIMD_WIDTH", "512", 1);
  EXPECT_EQ(atpg::resolve_simd_width(0), 512);
  ::setenv("HLTS_SIMD_WIDTH", "banana", 1);
  EXPECT_EQ(atpg::resolve_simd_width(0), 256);
}

// --- synthesis bit-identity matrix ------------------------------------------

/// Exact signature of a run: every committed merger with its bitwise cost
/// numbers (same scheme as bench_synthesis_scale).
std::string signature(const core::SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& rec : r.trajectory) {
    os << rec.description << ';' << rec.exec_time << ';' << rec.hw_cost << ';'
       << rec.delta_c << '|';
  }
  os << "final;" << r.exec_time << ';' << r.cost.total();
  return os.str();
}

TEST(SynthesisLayout, TrajectoryBitIdenticalAcrossWidthThreadsIncremental) {
  EnvGuard guard("HLTS_SIMD_WIDTH");
  for (const std::string& name : kBenchmarks) {
    const dfg::Dfg g = benchmarks::make_benchmark(name);
    core::SynthesisParams reference_params;
    reference_params.bits = 8;
    reference_params.num_threads = 1;
    reference_params.incremental = false;
    ::unsetenv("HLTS_SIMD_WIDTH");
    const std::string expected =
        signature(core::integrated_synthesis(g, reference_params));

    for (const int width : {64, 256, 512}) {
      ::setenv("HLTS_SIMD_WIDTH", std::to_string(width).c_str(), 1);
      for (const int threads : {1, 4}) {
        for (const bool incremental : {false, true}) {
          core::SynthesisParams p = reference_params;
          p.num_threads = threads;
          p.incremental = incremental;
          EXPECT_EQ(signature(core::integrated_synthesis(g, p)), expected)
              << name << " width=" << width << " threads=" << threads
              << " incremental=" << incremental;
        }
      }
    }
  }
}

// --- arena reuse across trials ----------------------------------------------

TEST(ArenaLayout, WorkspaceArenaPlateausAcrossTrials) {
  const dfg::Dfg g = benchmarks::make_ewf();
  const sched::Schedule s = sched::asap(g);
  const etpn::Binding b = etpn::Binding::default_binding(g);
  etpn::Etpn e = etpn::build_etpn(g, s, b);
  etpn::DataPath& dp = e.data_path;

  etpn::DpNodeId into = etpn::DpNodeId::invalid();
  etpn::DpNodeId from = etpn::DpNodeId::invalid();
  for (etpn::DpNodeId n : dp.node_ids()) {
    if (!dp.alive(n) || dp.node(n).kind != etpn::DpNodeKind::Module) continue;
    if (!into.valid()) {
      into = n;
    } else {
      from = n;
      break;
    }
  }
  ASSERT_TRUE(into.valid() && from.valid());

  const std::size_t arc_pool_before = dp.arc_pool_size();
  const std::size_t step_pool_before = dp.step_pool_size();

  util::Arena arena;
  std::size_t reserved_after_first = 0;
  std::size_t blocks_after_first = 0;
  for (int trial = 0; trial < 64; ++trial) {
    {
      const etpn::MergePatch patch =
          etpn::apply_merge_patch(dp, arena, into, from);
      etpn::revert_merge_patch(dp, patch);
    }
    arena.reset();
    // Revert restores the pool tails exactly: the next trial carves the
    // same region again instead of growing the pools without bound.
    EXPECT_EQ(dp.arc_pool_size(), arc_pool_before) << "trial " << trial;
    EXPECT_EQ(dp.step_pool_size(), step_pool_before) << "trial " << trial;
    EXPECT_EQ(arena.bytes_used(), 0u) << "trial " << trial;
    if (trial == 0) {
      reserved_after_first = arena.bytes_reserved();
      blocks_after_first = arena.num_blocks();
    } else {
      // Steady state: reset() retained every block, so no re-growth.
      EXPECT_EQ(arena.bytes_reserved(), reserved_after_first)
          << "trial " << trial;
      EXPECT_EQ(arena.num_blocks(), blocks_after_first) << "trial " << trial;
    }
  }
}

// --- checkpoint/resume under the SoA layout ---------------------------------

TEST(CheckpointLayout, ResumeBitIdenticalUnderSoA) {
  const dfg::Dfg g = benchmarks::make_benchmark("dct");
  core::FlowParams params;
  params.num_threads = 1;
  const core::FlowResult full = core::run_flow(core::FlowKind::Ours, g, params);

  std::vector<core::Checkpoint> ckpts;
  core::FlowParams recording = params;
  recording.checkpoint_every = 2;
  recording.on_checkpoint = [&](const core::Checkpoint& c) {
    ckpts.push_back(c);
  };
  (void)core::run_flow(core::FlowKind::Ours, g, recording);
  ASSERT_FALSE(ckpts.empty());

  // Resume from every boundary: the checkpointed schedule + binding are
  // re-materialized through build_etpn (compacted pools, SoA spans) and
  // must reproduce the uninterrupted run exactly.
  for (const core::Checkpoint& c : ckpts) {
    core::FlowParams resume = params;
    resume.resume_from = &c;
    const core::FlowResult resumed =
        core::run_flow(core::FlowKind::Ours, g, resume);
    EXPECT_EQ(full.exec_time, resumed.exec_time);
    EXPECT_EQ(full.registers, resumed.registers);
    EXPECT_EQ(full.modules, resumed.modules);
    EXPECT_EQ(full.muxes, resumed.muxes);
    EXPECT_EQ(full.cost.total(), resumed.cost.total());
    EXPECT_TRUE(full.schedule == resumed.schedule);
    EXPECT_EQ(full.module_allocation, resumed.module_allocation);
    EXPECT_EQ(full.register_allocation, resumed.register_allocation);
    EXPECT_EQ(full.iterations, resumed.iterations);
    EXPECT_EQ(full.stop_reason, resumed.stop_reason);
  }
}

}  // namespace
}  // namespace hlts
