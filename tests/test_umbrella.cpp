// Compile check: the umbrella header pulls in the whole public API.
#include "hlts.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EndToEndThroughPublicApi) {
  hlts::dfg::Dfg g = hlts::frontend::compile(
      "design tiny { input a, b; output register s; s = a * b + a; }");
  hlts::core::FlowResult r =
      hlts::core::run_flow(hlts::core::FlowKind::Ours, g, {.bits = 4});
  hlts::rtl::RtlDesign rtl =
      hlts::rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 4);
  hlts::rtl::Elaboration elab = hlts::rtl::elaborate(rtl);
  hlts::atpg::AtpgResult test =
      hlts::atpg::run_atpg(elab.netlist, rtl.steps() + 1);
  EXPECT_GT(test.fault_coverage, 0.9);
}
