// Chaos-harness tests (`ctest -L chaos`): the io_faults / net_chaos spec
// grammars and their deterministic probability streams, disk-fault
// injection through util/fs (short writes, ENOSPC, EIO -- and that the
// journal's atomic-commit protocol turns them into clean refusals, never
// corruption), socket timeouts against real sockets, and the idempotent
// retry protocol end to end: a RetryClient against a live forked-worker
// supervisor, where a retried flow_token is answered exactly once with
// the original bit-identical reply.
//
// Fault configuration (io_faults, net_chaos) is process-global; ctest runs
// each test in its own process, and every test clears what it armed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/flows.hpp"
#include "engine/engine.hpp"
#include "serve/client.hpp"
#include "serve/supervisor.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/io_faults.hpp"
#include "util/json.hpp"
#include "util/net_chaos.hpp"
#include "util/socket.hpp"

namespace hlts {
namespace {

namespace iof = util::io_faults;
namespace nc = util::net_chaos;

/// Fresh scratch tree under TMPDIR, recursively removed on scope exit.
struct TempRoot {
  std::string path;
  TempRoot() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/hlts_chaos_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : tmpl;
  }
  ~TempRoot() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Disarms every process-global fault shim on scope exit.
struct FaultGuard {
  ~FaultGuard() {
    iof::clear();
    nc::clear();
  }
};

// ---------------------------------------------------------------------------
// CRC32C: the checksum under the journal's v3 framing.

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 appendix B.4 test vector: 32 zero bytes.
  EXPECT_EQ(util::crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // "123456789", the classic check value for Castagnoli.
  EXPECT_EQ(util::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(util::crc32c(""), 0x00000000u);
  EXPECT_EQ(util::crc32c_hex(0xE3069283u), "e3069283");
  EXPECT_EQ(util::crc32c_hex(0x1u), "00000001");
}

TEST(Crc32c, AnySingleByteChangeChangesTheSum) {
  const std::string base = "{\"id\":7,\"name\":\"ex/ours\",\"version\":3}";
  const std::uint32_t sum = util::crc32c(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    EXPECT_NE(util::crc32c(mutated), sum) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Spec grammar: parse, reject, arm/disarm.

TEST(IoFaults, ParsesAndRejectsSpecs) {
  const FaultGuard guard;
  std::string error;
  EXPECT_TRUE(iof::configure("write:short:0.5:7", &error)) << error;
  EXPECT_TRUE(iof::armed());
  ASSERT_EQ(iof::active().size(), 1u);
  EXPECT_EQ(iof::active()[0].probability, 0.5);

  EXPECT_TRUE(iof::configure(
      "open:eio:0.1:1,write:enospc:1:2:3,fsync:eio:0.25:4,rename:eio:0:5",
      &error))
      << error;
  EXPECT_EQ(iof::active().size(), 4u);

  // Malformed specs leave the previous configuration untouched.
  EXPECT_FALSE(iof::configure("chmod:eio:1:0", &error));  // unknown op
  EXPECT_FALSE(iof::configure("write:melt:1:0", &error));  // unknown mode
  EXPECT_FALSE(iof::configure("fsync:short:1:0", &error));  // short != write
  EXPECT_FALSE(iof::configure("write:eio:1.5:0", &error));  // p out of range
  EXPECT_FALSE(iof::configure("write:eio:1:0:-2", &error));  // bad param
  EXPECT_FALSE(iof::configure("write:eio", &error));  // too few fields
  EXPECT_EQ(iof::active().size(), 4u);

  EXPECT_TRUE(iof::configure("", &error));
  EXPECT_FALSE(iof::armed());
}

TEST(IoFaults, ProbabilityStreamIsDeterministic) {
  const FaultGuard guard;
  auto draw_sequence = [] {
    std::vector<bool> fired;
    EXPECT_TRUE(iof::configure("write:eio:0.5:42"));
    for (int i = 0; i < 64; ++i) fired.push_back(iof::consult(
        iof::Op::Write).has_value());
    return fired;
  };
  const std::vector<bool> first = draw_sequence();
  const std::vector<bool> second = draw_sequence();
  EXPECT_EQ(first, second);
  // ~half fire at p=0.5; the exact count is pinned by the seed.
  int fired = 0;
  for (const bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
  // A different seed gives a different stream.
  EXPECT_TRUE(iof::configure("write:eio:0.5:43"));
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) other.push_back(iof::consult(
      iof::Op::Write).has_value());
  EXPECT_NE(first, other);
}

TEST(NetChaos, ParsesDefaultsAndRejections) {
  const FaultGuard guard;
  std::string error;
  EXPECT_TRUE(nc::configure("read:truncate:1:0,read:stall:1:1", &error))
      << error;
  ASSERT_EQ(nc::active().size(), 2u);
  EXPECT_EQ(nc::active()[0].param, 1);   // truncate default: 1 byte
  EXPECT_EQ(nc::active()[1].param, 50);  // stall default: 50 ms
  EXPECT_FALSE(nc::configure("connect:truncate:1:0", &error));
  EXPECT_FALSE(nc::configure("accept:reset:1:0", &error));
  EXPECT_TRUE(nc::configure("", &error));
  EXPECT_FALSE(nc::armed());
}

// ---------------------------------------------------------------------------
// Disk-fault injection through util/fs.

TEST(IoFaults, ShortWriteLeavesTornTempNeverTheFinalFile) {
  const FaultGuard guard;
  const TempRoot root;
  const std::string path = root.path + "/victim.json";
  const std::string content(4096, 'x');
  ASSERT_TRUE(iof::configure("write:short:1:0:1"));  // exactly one trigger
  try {
    util::fs::write_file_atomic(path, content);
    FAIL() << "short write did not surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Transient);
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
  }
  // The torn bytes are only ever in the temp file; the destination name
  // either does not exist or is complete.
  EXPECT_FALSE(util::fs::file_exists(path));
  EXPECT_TRUE(util::fs::file_exists(path + ".tmp"));

  // Trigger budget spent: the retry commits and repairs the temp debris.
  util::fs::write_file_atomic(path, content);
  EXPECT_EQ(util::fs::read_file(path), content);
}

TEST(IoFaults, EnospcIsNamedDistinctlyAndEioIsNot) {
  const FaultGuard guard;
  const TempRoot root;
  ASSERT_TRUE(iof::configure("fsync:enospc:1:0:1"));
  try {
    util::fs::write_file_atomic(root.path + "/full.json", "{}");
    FAIL() << "enospc did not surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("disk full: ENOSPC"),
              std::string::npos)
        << e.what();
  }
  ASSERT_TRUE(iof::configure("rename:eio:1:0:1"));
  try {
    util::fs::write_file_atomic(root.path + "/sick.json", "{}");
    FAIL() << "eio did not surface";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).find("disk full"), std::string::npos);
  }
}

TEST(IoFaults, JournalUnderDiskFaultsRefusesButNeverCorrupts) {
  const FaultGuard guard;
  const TempRoot root;
  // Heavy mixed faults: many writes tear, fsyncs and renames fail.  The
  // engine may refuse submissions (write-ahead record failed) or absorb
  // checkpoint failures as journal lag, but every file that *commits*
  // must verify, and results must stay bit-identical.
  ASSERT_TRUE(iof::configure(
      "write:short:0.3:7,fsync:eio:0.2:11,rename:enospc:0.1:13"));
  int refused = 0;
  int succeeded = 0;
  core::FlowParams params;
  params.num_threads = 1;
  const core::FlowResult reference = core::run_flow(
      core::FlowKind::Ours, benchmarks::make_benchmark("ex"), params);
  {
    engine::Engine eng({.max_concurrent_jobs = 1,
                        .max_retries = 0,
                        .journal_dir = root.path,
                        .checkpoint_every = 1});
    for (int i = 0; i < 12; ++i) {
      engine::FlowRequest r;
      r.name = "chaos-" + std::to_string(i);
      r.kind = core::FlowKind::Ours;
      r.dfg = benchmarks::make_benchmark("ex");
      r.params = params;
      try {
        const engine::JobPtr job = eng.submit(std::move(r));
        job->wait();
        if (job->state() == engine::JobState::Succeeded) {
          ++succeeded;
          EXPECT_EQ(job->result()->exec_time, reference.exec_time);
          EXPECT_EQ(job->result()->registers, reference.registers);
        }
      } catch (const Error&) {
        ++refused;  // admission refused: the write-ahead record failed
      }
    }
  }
  iof::clear();
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(refused, 0) << "faults never fired; the test is vacuous";
  const engine::Journal::ScrubReport report = engine::Engine::scrub(
      root.path);
  EXPECT_EQ(report.corrupt, 0) << "a committed journal file failed its CRC";
}

// ---------------------------------------------------------------------------
// Socket timeouts and wire-level chaos.

TEST(SocketTimeout, ReadTimesOutAgainstASilentPeer) {
  util::net::Listener listener(0);
  std::thread accepter([&] {
    const util::net::Fd peer = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });
  util::net::Fd fd = util::net::connect_local(listener.port());
  util::net::LineReader reader(fd.get(), 1024);
  reader.set_read_timeout_ms(50);
  try {
    (void)reader.read_line();
    FAIL() << "silent peer did not time out";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Transient);
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
  }
  accepter.join();
}

TEST(SocketTimeout, ConnectToDeadPortFailsFast) {
  // Bind-then-close: the port was just proven free, so connect must fail
  // (refused) rather than hang, with the timeout machinery engaged.
  int dead_port = 0;
  {
    util::net::Listener probe(0);
    dead_port = probe.port();
    probe.close_now();
  }
  EXPECT_THROW((void)util::net::connect_local(dead_port, 2000), Error);
}

TEST(NetChaos, InjectedResetSurfacesAsTransportError) {
  const FaultGuard guard;
  util::net::Listener listener(0);
  std::thread accepter([&] { (void)listener.accept(); });
  ASSERT_TRUE(nc::configure("write:reset:1:0:1"));
  util::net::Fd fd = util::net::connect_local(listener.port(), 0,
                                              /*chaos=*/true);
  EXPECT_THROW(util::net::write_all(fd.get(), "hello\n", /*chaos=*/true),
               Error);
  accepter.join();
}

TEST(NetChaos, TruncatedReadEndsTheStreamMidLine) {
  const FaultGuard guard;
  util::net::Listener listener(0);
  std::thread sender([&] {
    const util::net::Fd peer = listener.accept();
    util::net::write_all(peer.get(), "a-full-response-line\n");
  });
  util::net::Fd fd = util::net::connect_local(listener.port());
  util::net::LineReader reader(fd.get(), 1024);
  reader.enable_chaos();
  ASSERT_TRUE(nc::configure("read:truncate:1:0:3"));
  // Three bytes arrive, then the injected EOF: no complete line.
  EXPECT_EQ(reader.read_line(), std::nullopt);
  sender.join();
}

// ---------------------------------------------------------------------------
// Idempotent retry against a live supervisor.

core::FlowParams paper_params() {
  core::FlowParams p;
  p.k = 5;
  p.alpha = 2;
  p.beta = 1;
  p.num_threads = 1;
  return p;
}

api::FlowRequestV1 make_request(const std::string& name,
                                const std::string& bench) {
  api::FlowRequestV1 req;
  req.name = name;
  req.kind = core::FlowKind::Ours;
  req.dfg = benchmarks::make_benchmark(bench);
  req.params = paper_params();
  return req;
}

class ChaosServeFixture : public ::testing::Test {
 protected:
  /// Must run before any other thread exists (the ctor forks workers).
  serve::Server& make_server(int shards) {
    serve::ServerOptions opts;
    opts.shards = shards;
    opts.port = 0;
    opts.journal_root = root_.path;
    server_ = std::make_unique<serve::Server>(std::move(opts));
    runner_ = std::thread([s = server_.get()] { s->run(); });
    return *server_;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
    if (runner_.joinable()) runner_.join();
    server_.reset();
  }

  TempRoot root_;
  std::unique_ptr<serve::Server> server_;
  std::thread runner_;
};

TEST_F(ChaosServeFixture, SameFlowTokenIsAnsweredOnceBitIdentically) {
  serve::Server& server = make_server(2);
  api::FlowRequestV1 req = make_request("dedup/ours", "ex");
  req.flow_token = "tok-fixed-1";

  serve::Client first(server.port());
  const auto a = first.submit(req);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(a.result.has_value());
  EXPECT_EQ(a.result->state, "succeeded");

  // A different connection retrying the same token must get the memoized
  // reply -- the identical serialized document, not a re-execution.
  serve::Client second(server.port());
  const auto b = second.submit(req);
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_TRUE(b.result.has_value());
  EXPECT_EQ(util::json_dump(a.result->to_json()),
            util::json_dump(b.result->to_json()));

  // Exactly one execution: the cluster counted one submitted job.
  const auto health = second.health();
  ASSERT_TRUE(health.ok) << health.error;
  ASSERT_TRUE(health.health.has_value());
  const util::JsonValue* cluster = health.health->find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("submitted", -1), 1);
}

TEST_F(ChaosServeFixture, DistinctTokensExecuteIndependently) {
  serve::Server& server = make_server(2);
  serve::Client client(server.port());
  api::FlowRequestV1 req = make_request("solo/ours", "ex");
  req.flow_token = "tok-a";
  const auto a = client.submit(req);
  ASSERT_TRUE(a.ok) << a.error;
  req.flow_token = "tok-b";
  const auto b = client.submit(req);
  ASSERT_TRUE(b.ok) << b.error;
  const auto health = client.health();
  ASSERT_TRUE(health.ok);
  const util::JsonValue* cluster = health.health->find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("submitted", -1), 2);
}

TEST_F(ChaosServeFixture, RetryClientSurvivesInjectedResets) {
  const FaultGuard guard;
  serve::Server& server = make_server(2);

  // Every third read on the chaos connection resets; the retry layer must
  // reconnect with the same token and still deliver each job exactly once,
  // bit-identical to a serial run.
  ASSERT_TRUE(nc::configure("read:reset:0.34:5"));
  serve::ClientOptions opts;
  opts.retries = 8;
  opts.backoff_ms = 10;
  opts.chaos = true;
  serve::RetryClient client(server.port(), opts);

  const core::FlowResult serial = core::run_flow(
      core::FlowKind::Ours, benchmarks::make_benchmark("ex"), paper_params());
  for (int i = 0; i < 6; ++i) {
    const auto resp = client.submit(
        make_request("retry-" + std::to_string(i) + "/ours", "ex"));
    ASSERT_TRUE(resp.ok) << resp.error;
    ASSERT_TRUE(resp.result.has_value());
    ASSERT_EQ(resp.result->state, "succeeded");
    const api::FlowResultV1 expected =
        api::FlowResultV1::from_result(resp.result->name, serial);
    EXPECT_TRUE(expected.design_identical(*resp.result)) << i;
  }
  EXPECT_GT(client.reconnects(), 0) << "no reset ever fired; vacuous test";
  nc::clear();

  // Exactly six executions despite the reconnect storm.
  serve::Client tail(server.port());
  const auto health = tail.health();
  ASSERT_TRUE(health.ok) << health.error;
  const util::JsonValue* cluster = health.health->find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get_int("submitted", -1), 6);
}

TEST_F(ChaosServeFixture, FailedValidationDoesNotPoisonTheToken) {
  serve::Server& server = make_server(1);
  // A malformed request carrying a flow_token is refused at the schema
  // boundary -- before the token is registered -- so a corrected retry
  // with the same token must execute normally, not replay the refusal.
  util::net::Fd raw = util::net::connect_local(server.port());
  util::net::LineReader reader(raw.get(), 1u << 20);
  util::net::write_all(
      raw.get(),
      "{\"op\":\"submit\",\"request\":{\"schema_version\":1,"
      "\"flow_token\":\"tok-fixup\",\"name\":\"broken\"}}\n");
  const auto error_line = reader.read_line();
  ASSERT_TRUE(error_line.has_value());
  const auto error_doc = util::json_parse(*error_line);
  ASSERT_TRUE(error_doc.has_value());
  EXPECT_FALSE(error_doc->get_bool("ok", true));

  serve::Client client(server.port());
  api::FlowRequestV1 req = make_request("fixup/ours", "ex");
  req.flow_token = "tok-fixup";
  const auto good = client.submit(req);
  ASSERT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.result->state, "succeeded");
}

}  // namespace
}  // namespace hlts
